"""Figure 20: GraphR vs PIM/Tesseract (PR, SSSP on WV, AZ, LJ).

Paper numbers: 1.16x-4.12x speedup, 3.67x-10.96x more energy
efficient.

Shape assertions:
* GraphR wins every comparison;
* speedups sit in a band around the paper's 1.16-4.12x ([1.0, 6.5]);
* energy savings sit in a band around 3.67-10.96x ([2.5, 16]);
* the small graph (WV) shows the largest gain for both algorithms.
"""

from __future__ import annotations

from repro.experiments.calibration import BANDS
from repro.experiments.figures import figure20


def test_figure20_pim_shape(benchmark, runner):
    result = benchmark.pedantic(lambda: figure20(runner),
                                rounds=1, iterations=1)
    print("\n" + result.describe())

    cells = {(r.algorithm, r.dataset): r for r in result.rows}
    assert set(cells) == {(a, d) for a in ("pagerank", "sssp")
                          for d in ("WV", "AZ", "LJ")}

    for row in result.rows:
        assert row.speedup > 1.0, \
            f"{row.algorithm}/{row.dataset}: GraphR must win"
        assert BANDS["speedup_vs_pim"].contains(row.speedup)
        assert BANDS["energy_vs_pim"].contains(row.energy_saving)

    for algorithm in ("pagerank", "sssp"):
        assert cells[(algorithm, "WV")].speedup > \
            cells[(algorithm, "LJ")].speedup, \
            f"{algorithm}: gain should shrink with graph size"
