"""Figure 18: GraphR energy saving over the CPU platform.

Paper numbers: geometric mean 33.82x, maximum 217.88x (SpMV on SD),
minimum 4.50x (SSSP on OK).

Shape assertions:
* every run saves energy;
* the geometric energy saving exceeds the geometric speedup (the
  paper's headline relationship: 33.82x vs 16.01x);
* the minimum lands on SSSP on a large graph (WG/LJ/OK);
* the maximum lands on SpMV.
"""

from __future__ import annotations

from repro.experiments.calibration import BANDS
from repro.experiments.figures import figure18


def test_figure18_energy_shape(benchmark, runner):
    result = benchmark.pedantic(lambda: figure18(runner),
                                rounds=1, iterations=1)
    print("\n" + result.describe())

    savings = {(r.algorithm, r.dataset): r.energy_saving
               for r in result.rows}
    assert all(s > 1.0 for s in savings.values()), \
        "GraphR must save energy in every cell"

    band = BANDS["energy_geomean_vs_cpu"]
    assert band.contains(result.geomean_energy), \
        f"geomean {result.geomean_energy:.2f} far from the paper's 33.82"
    assert result.geomean_energy > result.geomean_speedup, \
        "energy saving should exceed speedup (paper: 33.82 vs 16.01)"

    worst = min(savings, key=savings.get)
    assert worst[0] == "sssp" and worst[1] in ("WG", "LJ", "OK"), \
        f"paper's min is SSSP on OK; got {worst}"

    best = max(savings, key=savings.get)
    assert best[0] == "spmv", f"paper's max is SpMV (on SD); got {best}"
