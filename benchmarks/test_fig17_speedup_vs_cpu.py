"""Figure 17: GraphR speedup over the CPU platform (25 runs).

Paper numbers: geometric mean 16.01x, maximum 132.67x (SpMV on WV),
minimum 2.40x (SSSP on OK); parallel-MAC algorithms (PR, SpMV) beat
parallel-add-op ones (BFS, SSSP).

Shape assertions (see EXPERIMENTS.md for the tolerance rationale):
* every run is faster on GraphR;
* the maximum lands on SpMV on a small graph;
* the geometric mean is O(10x);
* SpMV's geomean exceeds SSSP's (MAC > add-op);
* within each algorithm the smallest graph (WV) shows the largest
  speedup (sparsity/size trend).
"""

from __future__ import annotations

from repro.experiments.calibration import BANDS
from repro.experiments.figures import figure17
from repro.experiments.harness import geometric_mean


def test_figure17_speedup_shape(benchmark, runner):
    result = benchmark.pedantic(lambda: figure17(runner),
                                rounds=1, iterations=1)
    print("\n" + result.describe())

    speedups = {(r.algorithm, r.dataset): r.speedup for r in result.rows}
    assert all(s > 1.0 for s in speedups.values()), \
        "GraphR must win every cell"

    best = max(speedups, key=speedups.get)
    assert best[0] == "spmv" and best[1] in ("WV", "SD"), \
        f"paper's max is SpMV on WV; got {best}"

    band = BANDS["speedup_geomean_vs_cpu"]
    assert band.contains(result.geomean_speedup), \
        f"geomean {result.geomean_speedup:.2f} far from the paper's 16.01"

    spmv_gm = geometric_mean(
        s for (alg, _), s in speedups.items() if alg == "spmv")
    sssp_gm = geometric_mean(
        s for (alg, _), s in speedups.items() if alg == "sssp")
    assert spmv_gm > sssp_gm, "MAC pattern must beat add-op pattern"

    for algorithm in ("pagerank", "bfs", "sssp", "spmv"):
        wv = speedups[(algorithm, "WV")]
        lj = speedups[(algorithm, "LJ")]
        assert wv > lj, (f"{algorithm}: WV ({wv:.1f}x) should beat "
                         f"LJ ({lj:.1f}x)")
