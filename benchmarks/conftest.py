"""Shared fixtures for the benchmark suite.

The :class:`~repro.experiments.harness.ExperimentRunner` caches every
simulated run, so one session-scoped instance lets the Figure 17 and
Figure 18 benches (which share all 25 runs) pay for each simulation
once.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared, caching experiment runner per benchmark session."""
    return ExperimentRunner()
