"""Ablation: column-major vs row-major streaming-apply (Figure 11).

The paper chooses column-major because it needs a RegO only as wide as
one subgraph while row-major must hold every destination of a source
stripe, and ReRAM register writes are the expensive direction.  This
bench quantifies the register-capacity gap on the paper's geometry.
"""

from __future__ import annotations

from repro.core.config import GraphRConfig
from repro.graph.datasets import dataset
from repro.graph.partition import ceil_div


def register_requirements(config: GraphRConfig, num_vertices: int):
    """(column_major_rego, row_major_rego) entries, per Section 3.3."""
    width = config.tile_cols
    block = config.effective_block_size(num_vertices)
    column_major = width
    # Row-major holds the destinations of every subgraph sharing the
    # same source stripe: the full block width.
    row_major = ceil_div(block, width) * width
    return column_major, row_major


def test_column_major_needs_fewer_registers(benchmark):
    def measure():
        graph = dataset("WV")
        config = GraphRConfig(mode="analytic")
        return register_requirements(config, graph.num_vertices)

    column, row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nRegO entries: column-major={column}  row-major={row}")
    assert column < row, "the paper's choice must need fewer registers"
    assert row % column == 0
