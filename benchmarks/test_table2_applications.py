"""Table 2: application -> vertex-program mapping.

The benchmark regenerates the table and asserts the implementation
agrees with the paper row by row: reduce op, mapping pattern and
active-list requirement.
"""

from __future__ import annotations

from repro.algorithms.registry import get_program
from repro.algorithms.vertex_program import MappingPattern
from repro.experiments.tables import table2

EXPECTED = {
    "spmv": ("add", MappingPattern.PARALLEL_MAC, False),
    "pagerank": ("add", MappingPattern.PARALLEL_MAC, False),
    "bfs": ("min", MappingPattern.PARALLEL_ADD_OP, True),
    "sssp": ("min", MappingPattern.PARALLEL_ADD_OP, True),
}


def test_table2_matches_implementation(benchmark):
    rows, text = benchmark(table2)
    print("\n" + text)
    assert [r.application for r in rows] == list(EXPECTED)
    for row in rows:
        reduce_op, pattern, active = EXPECTED[row.application]
        program = get_program(row.application)
        assert program.reduce_op == reduce_op
        assert program.pattern is pattern
        assert program.needs_active_list is active
        assert row.active_vertex_list_required is active
