"""Ablation: empty-subgraph skipping (Section 3.3).

The paper: "if the subgraph is empty, then GEs can move down to the
next subgraph. Therefore, the sparsity only incurs waste inside the
subgraph."  Disabling the skip streams every subgraph slot; on sparse
real-world graphs this must cost a large factor in both time and
crossbar writes.
"""

from __future__ import annotations

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.datasets import dataset


def test_empty_subgraph_skip_pays(benchmark):
    def ablate():
        graph = dataset("WV")
        with_skip = GraphR(GraphRConfig(mode="analytic"))
        without = GraphR(GraphRConfig(mode="analytic",
                                      skip_empty_subgraphs=False))
        _, fast = with_skip.run("pagerank", graph, max_iterations=5)
        _, slow = without.run("pagerank", graph, max_iterations=5)
        return fast, slow

    fast, slow = benchmark.pedantic(ablate, rounds=1, iterations=1)
    gain = slow.seconds / fast.seconds
    print(f"\nskip ON: {fast.seconds * 1e3:.3f} ms  "
          f"OFF: {slow.seconds * 1e3:.3f} ms  gain: {gain:.1f}x")
    assert gain > 1.5, "sparsity skipping must pay on a sparse graph"
    assert slow.joules > fast.joules
