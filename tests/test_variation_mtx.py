"""Tests for the device variation model and MatrixMarket I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError, GraphFormatError
from repro.graph.generators import rmat
from repro.graph.graph import Graph
from repro.graph.mtx import load_mtx, save_mtx
from repro.reram.variation import VariationModel


class TestVariationModel:
    def test_identity_when_disabled(self):
        model = VariationModel()
        levels = np.arange(16).reshape(4, 4).astype(float)
        assert np.array_equal(model.effective_levels(levels), levels)

    def test_programming_variation_preserves_zeros(self):
        model = VariationModel(programming_sigma=0.2, seed=1)
        levels = np.zeros((4, 4))
        levels[1, 2] = 8
        out = model.effective_levels(levels)
        assert out[0, 0] == 0.0
        assert out[1, 2] != 8.0
        assert out[1, 2] > 0.0

    def test_variation_is_deterministic_per_seed(self):
        model = VariationModel(programming_sigma=0.1, seed=9)
        levels = np.full((4, 4), 5.0)
        assert np.array_equal(model.effective_levels(levels),
                              model.effective_levels(levels))

    def test_ir_drop_attenuates_far_corner_most(self):
        model = VariationModel(ir_drop_alpha=0.2)
        gain = model.gain_map((8, 8))
        assert gain[0, 0] == 1.0
        assert gain[7, 7] == pytest.approx(0.8)
        assert np.all(np.diff(gain[0]) <= 0)
        assert np.all(np.diff(gain[:, 0]) <= 0)

    def test_single_cell_gain(self):
        assert VariationModel(ir_drop_alpha=0.3).gain_map((1, 1))[0, 0] \
            == 1.0

    def test_batch_matches_per_tile_field(self):
        """Every tile of a batch sees the same gain field the 2-D call
        derives, so batched and per-tile execution stay bit-equal."""
        model = VariationModel(programming_sigma=0.1, ir_drop_alpha=0.2,
                               seed=3)
        levels = np.arange(24, dtype=float).reshape(2, 3, 4)
        batched = model.effective_levels_batch(levels)
        for tile, expect in zip(levels, batched):
            assert np.array_equal(model.effective_levels(tile), expect)

    def test_batch_requires_three_dims(self):
        with pytest.raises(DeviceError):
            VariationModel().effective_levels_batch(np.zeros((2, 2)))

    def test_effective_levels_within_error_bound(self):
        model = VariationModel(programming_sigma=0.05,
                               ir_drop_alpha=0.1, seed=2)
        levels = np.full((8, 8), 15.0)
        out = model.effective_levels(levels)
        exact_sum = levels.sum(axis=0)
        actual_sum = out.sum(axis=0)
        bound = model.mvm_error_bound((8, 8), max_level=15)
        assert np.all(np.abs(actual_sum - exact_sum) <= bound)

    def test_invalid_params(self):
        with pytest.raises(DeviceError):
            VariationModel(programming_sigma=-0.1)
        with pytest.raises(DeviceError):
            VariationModel(ir_drop_alpha=1.0)

    def test_non_matrix_rejected(self):
        with pytest.raises(DeviceError):
            VariationModel().effective_levels(np.zeros(4))

    def test_bad_gain_shape(self):
        with pytest.raises(DeviceError):
            VariationModel().gain_map((0, 4))


class TestMatrixMarket:
    def test_round_trip_weighted(self, tmp_path):
        graph = rmat(5, 70, seed=4, weighted=True)
        path = tmp_path / "g.mtx"
        save_mtx(graph, path, comment="round trip")
        loaded = load_mtx(path)
        assert loaded.weighted
        assert np.array_equal(loaded.adjacency.to_dense(),
                              graph.adjacency.to_dense())

    def test_round_trip_pattern(self, tmp_path):
        graph = rmat(5, 70, seed=4, weighted=False)
        path = tmp_path / "g.mtx"
        save_mtx(graph, path)
        loaded = load_mtx(path)
        assert not loaded.weighted
        header = path.read_text().splitlines()[0]
        assert "pattern" in header
        assert loaded.num_edges == graph.num_edges

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 1.0\n"
        )
        graph = load_mtx(path)
        dense = graph.adjacency.to_dense()
        assert dense[1, 0] == 5.0
        assert dense[0, 1] == 5.0
        assert dense[2, 2] == 1.0
        assert graph.num_edges == 3  # diagonal entry not mirrored

    def test_one_indexing_converted(self, tmp_path):
        path = tmp_path / "one.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 1\n"
            "1 2 7\n"
        )
        graph = load_mtx(path)
        assert graph.adjacency.to_dense()[0, 1] == 7.0

    def test_rectangular_embedded_square(self, tmp_path):
        path = tmp_path / "rect.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 5 1\n"
            "1 5 2.5\n"
        )
        graph = load_mtx(path)
        assert graph.num_vertices == 5

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(GraphFormatError):
            load_mtx(path)

    def test_bad_entry(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2\n"
        )
        with pytest.raises(GraphFormatError):
            load_mtx(path)

    def test_entry_count_checked(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 2 1.0\n"
        )
        with pytest.raises(GraphFormatError):
            load_mtx(path)

    def test_truncated_symmetric_rejected(self, tmp_path):
        """Symmetric files state the stored entry count; a truncated
        file must fail the size-line check, not load silently."""
        path = tmp_path / "short_sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "2 1 5.0\n"
            "3 3 1.0\n"
        )
        with pytest.raises(GraphFormatError, match="expected 3 entries"):
            load_mtx(path)

    def test_symmetric_count_is_raw_not_mirrored(self, tmp_path):
        """The size line counts stored entries, not the mirrored
        expansion — a correct file keeps loading."""
        path = tmp_path / "ok_sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 1.0\n"
        )
        assert load_mtx(path).num_edges == 3

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "2 2 1\n"
            "% another\n"
            "1 1 3.0\n"
        )
        graph = load_mtx(path)
        assert graph.adjacency.to_dense()[0, 0] == 3.0
