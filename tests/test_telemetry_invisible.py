"""Telemetry must be invisible to results.

The observability layer (metrics, tracing, logging) may never perturb
what the simulator computes: content keys must not change, cached
payloads must round-trip, and a run executed with telemetry disabled
must produce bit-identical simulated values to one executed with it
enabled — across every deployment path.
"""

from __future__ import annotations

import pytest

from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.obs import metrics, tracing
from repro.runtime import BatchRunner
from repro.runtime.job import Job


@pytest.fixture
def telemetry_off():
    """Disable tracing and metrics for the duration of one test."""
    tracing.set_enabled(False)
    metrics.set_enabled(False)
    yield
    tracing.set_enabled(True)
    metrics.set_enabled(True)


DEPLOYMENTS = [
    pytest.param(None, None, id="single-node"),
    pytest.param(DeploymentSpec(kind="out-of-core"),
                 GraphRConfig(mode="analytic", block_size=64),
                 id="out-of-core"),
    pytest.param(DeploymentSpec(kind="multi-node", num_nodes=2), None,
                 id="multi-node"),
]


class TestContentKeys:
    def test_key_is_independent_of_telemetry_state(self):
        job = Job("pagerank", "WV",
                  run_kwargs={"max_iterations": 2})
        enabled_key = job.content_key()
        tracing.set_enabled(False)
        metrics.set_enabled(False)
        try:
            disabled_key = job.content_key()
        finally:
            tracing.set_enabled(True)
            metrics.set_enabled(True)
        assert enabled_key == disabled_key

    def test_trace_never_enters_the_key(self, tmp_path):
        # Two runs of the same job carry different wall-clock traces;
        # the cache must still identify them as the same work.
        runner = BatchRunner(cache_dir=tmp_path / "cache")
        first = runner.run("spmv", "WV")
        result = runner.run_jobs(
            [runner.make_job("spmv", "WV")])[0]
        assert result.from_cache
        # The cached payload round-trips exactly — trace included.
        assert result.stats.to_dict() == first.to_dict()


class TestBitIdenticalValues:
    @pytest.mark.parametrize("deployment,config", DEPLOYMENTS)
    def test_disabled_telemetry_matches_enabled(self, deployment,
                                                config, tmp_path):
        def run(tag):
            runner = BatchRunner(cache_dir=tmp_path / tag)
            return runner.run("pagerank", "WV", config=config,
                              deployment=deployment,
                              max_iterations=3)

        traced = run("enabled")
        assert "trace" in traced.extra

        tracing.set_enabled(False)
        metrics.set_enabled(False)
        try:
            plain = run("disabled")
        finally:
            tracing.set_enabled(True)
            metrics.set_enabled(True)
        assert "trace" not in plain.extra

        # Strip the (wall-clock) trace; everything simulated must be
        # bit-identical.
        assert traced.identity_dict() == plain.identity_dict()

    def test_direct_engine_runs_carry_no_trace(self):
        # Library users calling execute_job outside the job runtime
        # never get a root span, so their stats are untouched.
        from repro.runtime.scheduler import execute_job

        stats = execute_job(Job("spmv", "WV"))
        assert "trace" not in stats.extra


class TestDisabledRuntimePaths:
    def test_batch_runtime_with_telemetry_off(self, telemetry_off):
        stats = BatchRunner().run("bfs", "WV", source=0)
        assert "trace" not in stats.extra
        assert stats.seconds > 0

    def test_identity_dict_strips_only_the_trace(self):
        stats = BatchRunner().run("spmv", "WV")
        full = stats.to_dict()
        identity = stats.identity_dict()
        assert "trace" in full["extra"]
        assert "trace" not in identity["extra"]
        trimmed = dict(full, extra={k: v
                                    for k, v in full["extra"].items()
                                    if k != "trace"})
        assert identity == trimmed
