"""Unit tests for GraphRConfig validation and derived geometry."""

from __future__ import annotations

import pytest

from repro.core.config import GraphRConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_configuration(self):
        """Section 5.2: S=8, C=32, G=64, 16-bit data on 4-bit cells."""
        cfg = GraphRConfig()
        assert cfg.crossbar_size == 8
        assert cfg.crossbars_per_ge == 32
        assert cfg.num_ges == 64
        assert cfg.slices == 4
        assert cfg.logical_crossbars_per_ge == 8
        assert cfg.logical_crossbars == 512

    def test_tile_geometry(self):
        cfg = GraphRConfig()
        assert cfg.tile_rows == 8
        assert cfg.tile_cols == 8 * 512

    def test_adc_sizing_matches_paper(self):
        """8 x 32 = 256 bitlines per GE at 1 GSps over 64 ns -> 4 ADCs
        (one per eight 8-bitline crossbars, as Section 3.2 sizes)."""
        cfg = GraphRConfig()
        assert cfg.adcs_per_ge == 4

    def test_effective_block_size(self):
        assert GraphRConfig().effective_block_size(1000) == 1000
        assert GraphRConfig(block_size=64).effective_block_size(1000) == 64
        assert GraphRConfig(block_size=2000).effective_block_size(1000) \
            == 1000


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            GraphRConfig(crossbar_size=0)
        with pytest.raises(ConfigError):
            GraphRConfig(num_ges=-1)

    def test_data_bits_must_divide(self):
        with pytest.raises(ConfigError):
            GraphRConfig(data_bits=10)

    def test_crossbars_must_cover_slices(self):
        with pytest.raises(ConfigError):
            GraphRConfig(crossbars_per_ge=2)  # 4 slices need >= 4

    def test_bad_frac_bits(self):
        with pytest.raises(ConfigError):
            GraphRConfig(frac_bits=16)

    def test_bad_streaming_order(self):
        with pytest.raises(ConfigError):
            GraphRConfig(streaming_order="diagonal")

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            GraphRConfig(mode="hybrid")

    def test_bad_block_size(self):
        with pytest.raises(ConfigError):
            GraphRConfig(block_size=0)

    def test_bad_noise(self):
        with pytest.raises(ConfigError):
            GraphRConfig(noise_sigma=-0.5)

    def test_bad_iterations(self):
        with pytest.raises(ConfigError):
            GraphRConfig(max_iterations=0)

    def test_bad_tolerance(self):
        with pytest.raises(ConfigError):
            GraphRConfig(tolerance=-1.0)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            GraphRConfig(mem_bandwidth_bps=0)

    def test_with_overrides(self):
        cfg = GraphRConfig().with_overrides(num_ges=8)
        assert cfg.num_ges == 8
        assert GraphRConfig().num_ges == 64

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GraphRConfig().num_ges = 7

    def test_cell_bits_interaction(self):
        from repro.hw.params import default_technology
        tech = default_technology().with_reram(cell_bits=2)
        cfg = GraphRConfig(technology=tech, crossbars_per_ge=32)
        assert cfg.slices == 8
        assert cfg.logical_crossbars_per_ge == 4


class TestCanonicalSerialization:
    def test_dict_round_trip(self):
        cfg = GraphRConfig(mode="analytic", num_ges=8,
                           block_size=1024)
        assert GraphRConfig.from_dict(cfg.to_dict()) == cfg

    def test_partial_dict_keeps_defaults(self):
        cfg = GraphRConfig.from_dict({"num_ges": 8})
        assert cfg.num_ges == 8
        assert cfg.crossbar_size == GraphRConfig().crossbar_size

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            GraphRConfig.from_dict({"num_gpus": 2})

    def test_nested_technology_round_trip(self):
        from repro.hw.params import default_technology
        tech = default_technology().with_reram(cell_bits=2)
        cfg = GraphRConfig(technology=tech)
        clone = GraphRConfig.from_dict(cfg.to_dict())
        assert clone.technology.reram.cell_bits == 2
        assert clone == cfg

    def test_content_hash_stable_and_sensitive(self):
        a = GraphRConfig(mode="analytic")
        b = GraphRConfig(mode="analytic")
        assert a.content_hash() == b.content_hash()
        assert len(a.content_hash()) == 64
        assert a.content_hash() != \
            GraphRConfig(mode="analytic", num_ges=8).content_hash()
        tech = GraphRConfig(
            technology=GraphRConfig().technology.with_reram(
                cell_bits=2))
        assert a.content_hash() != tech.content_hash()

    def test_canonical_json_is_deterministic(self):
        text = GraphRConfig().canonical_json()
        assert text == GraphRConfig().canonical_json()
        import json
        assert json.loads(text)["crossbar_size"] == 8
