"""Unit tests for the COO sparse matrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix


class TestConstruction:
    def test_basic(self, sparse_matrix):
        assert sparse_matrix.shape == (4, 4)
        assert sparse_matrix.nnz == 6

    def test_default_values_are_ones(self):
        coo = COOMatrix((3, 3), [0, 1], [1, 2])
        assert np.array_equal(coo.values, [1.0, 1.0])

    def test_empty(self):
        coo = COOMatrix.empty((5, 7))
        assert coo.nnz == 0
        assert coo.shape == (5, 7)
        assert coo.density == 0.0

    def test_zero_shape_density(self):
        assert COOMatrix.empty((0, 0)).density == 0.0

    def test_negative_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((-1, 3), [], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((3, 3), [0, 1], [1])

    def test_values_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((3, 3), [0], [1], [1.0, 2.0])

    def test_row_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((3, 3), [3], [0])

    def test_col_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((3, 3), [0], [3])

    def test_negative_coordinate_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((3, 3), [-1], [0])

    def test_two_dimensional_rows_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix((3, 3), [[0, 1]], [[1, 2]])


class TestFromEdges:
    def test_pairs(self):
        coo = COOMatrix.from_edges([(0, 1), (2, 0)])
        assert coo.shape == (3, 3)
        assert coo.nnz == 2

    def test_triples(self):
        coo = COOMatrix.from_edges([(0, 1, 2.5)])
        assert coo.values[0] == 2.5

    def test_explicit_shape(self):
        coo = COOMatrix.from_edges([(0, 1)], shape=(10, 10))
        assert coo.shape == (10, 10)

    def test_bad_tuple_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix.from_edges([(0, 1, 2, 3)])

    def test_empty_iterable(self):
        coo = COOMatrix.from_edges([])
        assert coo.shape == (0, 0)


class TestDense:
    def test_round_trip(self, sparse_matrix):
        dense = sparse_matrix.to_dense()
        expected = np.array([
            [0, 0, 3, 8],
            [0, 0, 7, 0],
            [1, 0, 0, 0],
            [0, 4, 0, 2],
        ], dtype=float)
        assert np.array_equal(dense, expected)
        back = COOMatrix.from_dense(dense)
        assert np.array_equal(back.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(GraphFormatError):
            COOMatrix.from_dense(np.ones(4))

    def test_duplicates_summed_in_dense(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0])
        assert coo.to_dense()[0, 1] == 5.0


class TestTransforms:
    def test_transpose(self, sparse_matrix):
        t = sparse_matrix.transpose()
        assert np.array_equal(t.to_dense(), sparse_matrix.to_dense().T)

    def test_transpose_rectangular(self):
        coo = COOMatrix((2, 5), [0, 1], [4, 2], [1.0, 2.0])
        assert coo.transpose().shape == (5, 2)

    def test_sorted_by_row(self, sparse_matrix):
        s = sparse_matrix.sorted_by("row")
        keys = list(zip(s.rows, s.cols))
        assert keys == sorted(keys)

    def test_sorted_by_col(self, sparse_matrix):
        s = sparse_matrix.sorted_by("col")
        keys = list(zip(s.cols, s.rows))
        assert keys == sorted(keys)

    def test_sorted_bad_order(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.sorted_by("diagonal")

    def test_permuted_identity(self, sparse_matrix):
        p = sparse_matrix.permuted(np.arange(sparse_matrix.nnz))
        assert p == sparse_matrix

    def test_permuted_bad_length(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.permuted(np.arange(3))

    def test_take_subset(self, sparse_matrix):
        sub = sparse_matrix.take(np.array([0, 2]))
        assert sub.nnz == 2
        assert sub.values[1] == 7.0

    def test_take_out_of_range(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.take(np.array([99]))

    def test_scaled(self, sparse_matrix):
        assert np.array_equal(sparse_matrix.scaled(2.0).values,
                              np.asarray(sparse_matrix.values) * 2)

    def test_with_values(self, sparse_matrix):
        new = sparse_matrix.with_values(np.zeros(6))
        assert new.nnz == 6
        assert np.all(np.asarray(new.values) == 0)


class TestDeduplicate:
    @pytest.fixture
    def dupes(self):
        return COOMatrix((3, 3), [0, 0, 1, 0], [1, 1, 2, 1],
                         [1.0, 2.0, 5.0, 4.0])

    def test_sum(self, dupes):
        d = dupes.deduplicated("sum")
        assert d.nnz == 2
        assert d.to_dense()[0, 1] == 7.0

    def test_min(self, dupes):
        assert dupes.deduplicated("min").to_dense()[0, 1] == 1.0

    def test_max(self, dupes):
        assert dupes.deduplicated("max").to_dense()[0, 1] == 4.0

    def test_last(self, dupes):
        assert dupes.deduplicated("last").to_dense()[0, 1] == 4.0

    def test_bad_mode(self, dupes):
        with pytest.raises(GraphFormatError):
            dupes.deduplicated("mean")

    def test_empty_input(self):
        d = COOMatrix.empty((3, 3)).deduplicated()
        assert d.nnz == 0

    def test_idempotent(self, dupes):
        once = dupes.deduplicated("sum")
        twice = once.deduplicated("sum")
        assert once == twice


class TestSubmatrix:
    def test_basic(self, sparse_matrix):
        sub = sparse_matrix.submatrix(0, 2, 2, 4)
        assert sub.shape == (2, 2)
        assert np.array_equal(sub.to_dense(), [[3, 8], [7, 0]])

    def test_rebased_coordinates(self, sparse_matrix):
        sub = sparse_matrix.submatrix(2, 4, 0, 2)
        assert set(zip(sub.rows, sub.cols)) == {(0, 0), (1, 1)}

    def test_empty_region(self, sparse_matrix):
        sub = sparse_matrix.submatrix(1, 2, 0, 2)
        assert sub.nnz == 0

    def test_bad_row_range(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.submatrix(2, 1, 0, 4)

    def test_bad_col_range(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.submatrix(0, 4, 0, 9)


class TestLinearAlgebra:
    def test_matvec_matches_dense(self, sparse_matrix, rng):
        x = rng.random(4)
        assert np.allclose(sparse_matrix.matvec(x),
                           sparse_matrix.to_dense() @ x)

    def test_rmatvec_matches_dense(self, sparse_matrix, rng):
        x = rng.random(4)
        assert np.allclose(sparse_matrix.rmatvec(x),
                           sparse_matrix.to_dense().T @ x)

    def test_matvec_bad_length(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.matvec(np.ones(5))

    def test_rmatvec_bad_length(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            sparse_matrix.rmatvec(np.ones(5))

    def test_matvec_with_duplicates(self):
        coo = COOMatrix((2, 2), [0, 0], [0, 0], [1.0, 2.0])
        assert coo.matvec(np.array([1.0, 0.0]))[0] == 3.0

    def test_degrees(self, sparse_matrix):
        assert np.array_equal(sparse_matrix.row_degrees(), [2, 1, 1, 2])
        assert np.array_equal(sparse_matrix.col_degrees(), [1, 1, 2, 2])


class TestDunder:
    def test_len_and_iter(self, sparse_matrix):
        assert len(sparse_matrix) == 6
        entries = list(sparse_matrix)
        assert entries[0] == (0, 2, 3.0)

    def test_repr(self, sparse_matrix):
        assert "nnz=6" in repr(sparse_matrix)

    def test_eq_other_type(self, sparse_matrix):
        assert sparse_matrix != 42

    def test_unhashable(self, sparse_matrix):
        with pytest.raises(TypeError):
            hash(sparse_matrix)

    def test_views_are_readonly(self, sparse_matrix):
        with pytest.raises(ValueError):
            sparse_matrix.rows[0] = 3
