"""Tests for the explicit out-of-core workflow (Figure 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.outofcore import (
    OutOfCoreRunner,
    prepare_on_disk,
)
from repro.errors import ConfigError
from repro.graph.generators import rmat


@pytest.fixture
def graph():
    return rmat(6, 250, seed=19, weighted=True, name="ooc")


@pytest.fixture
def config():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        block_size=16, mode="analytic")


class TestPrepare:
    def test_manifest_written(self, graph, config, tmp_path):
        manifest = prepare_on_disk(graph, tmp_path, config)
        assert manifest.num_edges == graph.num_edges
        assert manifest.block_size == 16
        assert (tmp_path / "manifest.json").exists()
        assert len(manifest.files) == manifest.blocks_per_side ** 2
        for filename in manifest.files:
            assert (tmp_path / filename).exists()

    def test_blocks_partition_edges(self, graph, config, tmp_path):
        manifest = prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        loaded = runner.load_graph()
        assert loaded.num_edges == graph.num_edges
        assert np.array_equal(loaded.adjacency.to_dense(),
                              graph.adjacency.to_dense())

    def test_whole_graph_block(self, graph, tmp_path):
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, mode="analytic")
        manifest = prepare_on_disk(graph, tmp_path, config)
        assert len(manifest.files) == 1


class TestRunner:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            OutOfCoreRunner(tmp_path)

    def test_results_match_in_memory(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        ooc_result, ooc_stats = runner.run("sssp", source=0)
        in_memory, mem_stats = GraphR(config).run("sssp", graph,
                                                  source=0)
        assert np.array_equal(ooc_result.values, in_memory.values)
        assert ooc_stats.seconds == pytest.approx(mem_stats.seconds)

    def test_disk_time_reported_separately(self, graph, config,
                                           tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", max_iterations=5)
        assert stats.extra["disk_seconds"] > 0
        assert stats.extra["seconds_with_disk"] \
            == pytest.approx(stats.seconds + stats.extra["disk_seconds"])
        # Disk I/O is excluded from the paper-comparable time.
        assert stats.extra["seconds_with_disk"] > stats.seconds

    def test_disk_energy_charged(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", max_iterations=5)
        assert stats.energy.energy_of("disk") > 0

    def test_block_count_recorded(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("spmv")
        assert stats.extra["blocks"] == runner.manifest.blocks_per_side ** 2
