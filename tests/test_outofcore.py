"""Tests for the explicit out-of-core workflow (Figure 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.outofcore import (
    OutOfCoreRunner,
    prepare_on_disk,
)
from repro.errors import ConfigError, GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.generators import rmat
from repro.graph.graph import Graph
from repro.graph.io import load_binary, save_binary


@pytest.fixture
def graph():
    return rmat(6, 250, seed=19, weighted=True, name="ooc")


@pytest.fixture
def config():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        block_size=16, mode="analytic")


class TestPrepare:
    def test_manifest_written(self, graph, config, tmp_path):
        manifest = prepare_on_disk(graph, tmp_path, config)
        assert manifest.num_edges == graph.num_edges
        assert manifest.block_size == 16
        assert (tmp_path / "manifest.json").exists()
        assert len(manifest.files) == manifest.blocks_per_side ** 2
        for filename in manifest.files:
            assert (tmp_path / filename).exists()

    def test_blocks_partition_edges(self, graph, config, tmp_path):
        manifest = prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        loaded = runner.load_graph()
        assert loaded.num_edges == graph.num_edges
        assert np.array_equal(loaded.adjacency.to_dense(),
                              graph.adjacency.to_dense())

    def test_whole_graph_block(self, graph, tmp_path):
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, mode="analytic")
        manifest = prepare_on_disk(graph, tmp_path, config)
        assert len(manifest.files) == 1


class TestRunner:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            OutOfCoreRunner(tmp_path)

    def test_results_match_in_memory(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        ooc_result, ooc_stats = runner.run("sssp", source=0)
        in_memory, mem_stats = GraphR(config).run("sssp", graph,
                                                  source=0)
        assert np.array_equal(ooc_result.values, in_memory.values)
        assert ooc_stats.seconds == pytest.approx(mem_stats.seconds)

    def test_disk_time_reported_separately(self, graph, config,
                                           tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", max_iterations=5)
        assert stats.extra["disk_seconds"] > 0
        assert stats.extra["seconds_with_disk"] \
            == pytest.approx(stats.seconds + stats.extra["disk_seconds"])
        # Disk I/O is excluded from the paper-comparable time.
        assert stats.extra["seconds_with_disk"] > stats.seconds

    def test_disk_energy_charged(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", max_iterations=5)
        assert stats.energy.energy_of("disk") > 0

    def test_block_count_recorded(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("spmv")
        assert stats.extra["blocks"] == runner.manifest.blocks_per_side ** 2

    def test_cf_unsupported_with_clear_error(self, graph, config,
                                             tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        with pytest.raises(ConfigError, match="collaborative filtering"):
            runner.run("cf", epochs=1)

    def test_unknown_mode_rejected(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        with pytest.raises(ConfigError, match="mode"):
            runner.run("pagerank", mode="quantum", max_iterations=2)

    def test_sparsity_ablation_rejected(self, graph, tmp_path):
        """Per-partition streamers each count the whole grid's empty
        slots, so the no-skip ablation is single-node only."""
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, block_size=16,
                              mode="analytic",
                              skip_empty_subgraphs=False)
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        with pytest.raises(ConfigError, match="skip_empty_subgraphs"):
            runner.run("pagerank", max_iterations=2)


class TestModeHonoured:
    """Regression: a functional-mode config must run functionally
    (pre-fix, ``run`` hardcoded ``mode="analytic"`` and silently
    misreported the execution mode)."""

    def test_functional_config_runs_functionally(self, graph, tmp_path):
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, block_size=16,
                              mode="functional")
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", max_iterations=3)
        assert stats.extra["mode"] == "functional"
        # Functional runs show their device work in the ledgers.
        assert stats.energy.energy_of("crossbar_read") > 0

    def test_mode_argument_overrides_config(self, graph, config,
                                            tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", mode="functional",
                              max_iterations=3)
        assert stats.extra["mode"] == "functional"

    def test_auto_resolves_like_the_accelerator(self, graph, tmp_path):
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, block_size=16, mode="auto")
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, stats = runner.run("pagerank", max_iterations=3)
        assert stats.extra["mode"] == "functional"
        budget_zero = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                   num_ges=2, block_size=16,
                                   mode="auto",
                                   functional_tile_budget=0)
        _, stats = OutOfCoreRunner(tmp_path, budget_zero).run(
            "pagerank", max_iterations=3)
        assert stats.extra["mode"] == "analytic"


class TestBlockIntegrity:
    """Corrupt block files must be rejected, not silently loaded."""

    def _rewrite_block(self, directory, filename, shift_rows=0,
                       drop_last=False):
        piece = load_binary(directory / filename)
        rows = np.asarray(piece.adjacency.rows) + shift_rows
        cols = np.asarray(piece.adjacency.cols)
        values = np.asarray(piece.adjacency.values)
        if drop_last:
            rows, cols, values = rows[:-1], cols[:-1], values[:-1]
        n = piece.num_vertices
        save_binary(Graph(adjacency=COOMatrix((n, n), rows, cols,
                                              values),
                          name=filename, weighted=piece.weighted),
                    directory / filename)

    def _nonempty_block(self, runner):
        for index, filename in enumerate(runner.manifest.files):
            if load_binary(runner.directory / filename).num_edges > 1:
                return index, filename
        raise AssertionError("fixture has no non-empty block")

    def test_out_of_bounds_edges_rejected(self, graph, config,
                                          tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, filename = self._nonempty_block(runner)
        # Shift the block's sources into the neighbouring block row:
        # the total edge count still matches the manifest.
        self._rewrite_block(tmp_path, filename,
                            shift_rows=runner.manifest.block_size)
        with pytest.raises(GraphFormatError, match="outside block"):
            runner.run("pagerank", max_iterations=2)

    def test_missing_edges_rejected(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, filename = self._nonempty_block(runner)
        self._rewrite_block(tmp_path, filename, drop_last=True)
        with pytest.raises(GraphFormatError, match="manifest says"):
            runner.run("pagerank", max_iterations=2)

    def test_load_graph_validates_too(self, graph, config, tmp_path):
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        _, filename = self._nonempty_block(runner)
        self._rewrite_block(tmp_path, filename,
                            shift_rows=runner.manifest.block_size)
        with pytest.raises(GraphFormatError, match="outside block"):
            runner.load_graph()
