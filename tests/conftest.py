"""Shared fixtures: small deterministic graphs and configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GraphRConfig
from repro.graph.coo import COOMatrix
from repro.graph.generators import chain_graph, erdos_renyi, rmat
from repro.graph.graph import Graph


@pytest.fixture
def tiny_graph() -> Graph:
    """The 8-vertex directed graph of the paper's Figure 5."""
    edges = [
        (0, 2), (0, 3), (1, 2), (1, 3), (2, 0), (3, 0), (3, 1),
        (4, 1), (5, 0), (5, 1), (6, 0), (6, 1), (7, 1), (6, 2),
        (6, 3), (7, 2), (4, 6), (4, 7), (5, 6), (5, 7), (6, 4),
        (6, 5), (7, 4), (7, 6), (7, 7),
    ]
    return Graph.from_edges(edges, num_vertices=8, name="figure5")


@pytest.fixture
def small_weighted_graph() -> Graph:
    """64-vertex weighted R-MAT graph used across algorithm tests."""
    return rmat(6, 180, seed=5, weighted=True, name="rmat64w")


@pytest.fixture
def small_graph() -> Graph:
    """64-vertex unweighted R-MAT graph."""
    return rmat(6, 180, seed=5, weighted=False, name="rmat64")


@pytest.fixture
def medium_graph() -> Graph:
    """256-vertex uniform random graph."""
    return erdos_renyi(256, 1500, seed=9, name="er256")


@pytest.fixture
def path_graph() -> Graph:
    """Simple 10-vertex chain (known BFS/SSSP answers)."""
    return chain_graph(10)


@pytest.fixture
def sparse_matrix() -> COOMatrix:
    """The 4x4 example matrix of Figure 4a."""
    return COOMatrix(
        (4, 4),
        rows=[0, 0, 1, 2, 3, 3],
        cols=[2, 3, 2, 0, 1, 3],
        values=[3.0, 8.0, 7.0, 1.0, 4.0, 2.0],
    )


@pytest.fixture
def small_config() -> GraphRConfig:
    """Small functional-mode configuration for device-level tests."""
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        mode="functional", max_iterations=80)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(1234)
