"""Register-file tests and a device-level end-to-end PageRank check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram, pagerank_reference
from repro.core.config import GraphRConfig
from repro.core.registers import RegisterFile
from repro.core.streaming import SubgraphStreamer
from repro.errors import DeviceError
from repro.graph.generators import rmat
from repro.reram.fixed_point import FixedPointFormat
from repro.reram.ge_assembly import DeviceGraphEngine


class TestRegisterFile:
    def test_load_and_read(self):
        reg = RegisterFile(8, name="RegO")
        reg.load(np.arange(4.0), offset=2)
        assert np.array_equal(reg.read(2, 4), np.arange(4.0))
        assert reg.writes == 4
        assert reg.reads == 4

    def test_whole_register_read(self):
        reg = RegisterFile(4)
        reg.fill(7.0)
        assert np.array_equal(reg.read(), np.full(4, 7.0))

    def test_fill_counts_writes(self):
        reg = RegisterFile(16)
        reg.fill(0.0)
        assert reg.writes == 16

    def test_capacity_enforced(self):
        reg = RegisterFile(4)
        with pytest.raises(DeviceError):
            reg.load(np.ones(3), offset=2)
        with pytest.raises(DeviceError):
            reg.read(3, 2)
        with pytest.raises(DeviceError):
            reg.load(np.ones((2, 2)))

    def test_zero_capacity_rejected(self):
        with pytest.raises(DeviceError):
            RegisterFile(0)

    def test_data_view_readonly(self):
        reg = RegisterFile(4)
        with pytest.raises(ValueError):
            reg.data[0] = 1.0


class TestDeviceLevelPageRank:
    """One full PageRank iteration computed only with device objects:
    DeviceGraphEngine tiles + RegisterFile accumulation."""

    def test_device_iteration_matches_reference_step(self):
        graph = rmat(5, 100, seed=37)
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2)
        streamer = SubgraphStreamer(graph, config)
        program = PageRankProgram()
        fmt = FixedPointFormat(16, 15)

        n = graph.num_vertices
        padded = streamer.ordering.padded_vertices
        width = config.tile_cols
        props = program.initial_properties(graph)
        coeffs = program.crossbar_coefficient(graph)

        padded_inputs = np.zeros(padded + width)
        padded_inputs[:n] = props
        rego = RegisterFile(padded + width, name="accumulator")
        rego.fill(0.0)

        for tile in streamer.iter_subgraphs():
            engine = DeviceGraphEngine(
                crossbar_size=config.crossbar_size,
                logical_crossbars=config.logical_crossbars,
                fmt=fmt)
            dense = np.zeros((config.crossbar_size, width))
            dense[tile.rows_local, tile.cols_local] = coeffs[tile.edge_ids]
            inputs = padded_inputs[tile.row_base:
                                   tile.row_base + config.crossbar_size]
            chunk = rego.read(tile.col_base, width)
            updated = engine.mac_subgraph(dense, inputs, chunk)
            rego.load(updated, offset=tile.col_base)

        device_props = program.apply(rego.read(0, n), props, graph)

        # One exact reference power-iteration step.
        src = np.asarray(graph.adjacency.rows)
        dst = np.asarray(graph.adjacency.cols)
        deg = np.where(graph.out_degrees() > 0, graph.out_degrees(), 1)
        exact = np.full(n, 0.15 / n)
        np.add.at(exact, dst, 0.85 * props[src] / deg[src])

        assert np.allclose(device_props, exact, atol=2e-3)

    def test_device_chain_sssp_style_row_select(self):
        """SSSP's one-hot row select through real crossbars (Fig 16)."""
        from repro.reram.crossbar import Crossbar
        weights = np.array([
            [0, 1, 5, 0],
            [0, 0, 3, 1],
            [0, 0, 0, 0],
            [0, 0, 1, 0],
        ])
        xb = Crossbar(4, 4)
        xb.program(weights)
        row, _ = xb.select_row(0)
        assert np.array_equal(row, weights[0])
