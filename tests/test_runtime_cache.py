"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.hw.stats import RunStats
from repro.runtime.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.runtime.job import Job


@pytest.fixture
def job():
    return Job("pagerank", "WV", run_kwargs={"max_iterations": 5})


def make_stats() -> RunStats:
    stats = RunStats("graphr", "pagerank", "WV", seconds=1.25,
                     iterations=5, extra={"tiles": 7})
    stats.energy.charge("adc", count=3, energy_per_event_j=2e-12)
    stats.energy.charge_joules("static", 1e-6)
    stats.latency.add("ge_compute", 1.25)
    return stats


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        assert cache.get(job) is None
        cache.put(job, make_stats())
        got = cache.get(job)
        assert got is not None
        assert got.to_dict() == make_stats().to_dict()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_persistent_across_instances(self, tmp_path, job):
        ResultCache(tmp_path).put(job, make_stats())
        fresh = ResultCache(tmp_path)
        assert fresh.get(job) is not None
        assert fresh.stats.hits == 1

    def test_len_counts_entries(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(job, make_stats())
        assert len(cache) == 1


class TestInvalidation:
    def test_invalidate(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        assert cache.invalidate(job)
        assert not cache.invalidate(job)
        assert cache.get(job) is None
        assert cache.stats.invalidations == 1

    def test_clear(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        cache.put(Job("spmv", "WV"), make_stats())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestPeek:
    def test_peek_reads_without_counting(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        assert cache.peek(job) is None
        cache.put(job, make_stats())
        got = cache.peek(job)
        assert got is not None
        assert got.to_dict() == make_stats().to_dict()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0


class TestInventoryAndPrune:
    def put_aged(self, cache, job, age):
        """Store one entry and backdate its mtime by ``age`` seconds."""
        import os
        import time

        path = cache.put(job, make_stats())
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return path

    def test_entries_oldest_first(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        newer = Job("spmv", "WV")
        self.put_aged(cache, job, age=100)
        self.put_aged(cache, newer, age=10)
        entries = cache.entries()
        assert [e.key for e in entries] == [job.content_key(),
                                            newer.content_key()]
        assert all(e.bytes > 0 for e in entries)
        assert cache.total_bytes() == sum(e.bytes for e in entries)

    def test_prune_evicts_oldest_first(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        newer = Job("spmv", "WV")
        self.put_aged(cache, job, age=100)
        keep = self.put_aged(cache, newer, age=10)
        evicted = cache.prune(keep.stat().st_size)
        assert [e.key for e in evicted] == [job.content_key()]
        assert cache.get(newer) is not None
        assert cache.get(job) is None
        assert cache.stats.invalidations == 1

    def test_prune_zero_clears_everything(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        cache.put(Job("spmv", "WV"), make_stats())
        assert len(cache.prune(0)) == 2
        assert cache.total_bytes() == 0
        assert len(cache) == 0

    def test_prune_noop_under_budget(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        assert cache.prune(10 ** 9) == []
        assert len(cache) == 1

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(-1)


class TestPoisonedEntries:
    def test_corrupt_file_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        path = cache.path_for(job)
        path.parent.mkdir(parents=True)
        path.write_text("garbage{")
        assert cache.get(job) is None
        assert cache.stats.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_missing_stats_block_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        del payload["stats"]
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_malformed_stats_block_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["stats"]["energy_breakdown"] = {"adc": -1.0}
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_foreign_job_payload_is_a_miss(self, tmp_path, job):
        """An entry whose embedded job differs from the requester is
        never trusted (hash collision / hand-edited file)."""
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["job"]["algorithm"] = "bfs"
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None
