"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.errors import CacheError
from repro.hw.stats import RunStats
from repro.runtime.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.runtime.job import Job


@pytest.fixture
def job():
    return Job("pagerank", "WV", run_kwargs={"max_iterations": 5})


def make_stats() -> RunStats:
    stats = RunStats("graphr", "pagerank", "WV", seconds=1.25,
                     iterations=5, extra={"tiles": 7})
    stats.energy.charge("adc", count=3, energy_per_event_j=2e-12)
    stats.energy.charge_joules("static", 1e-6)
    stats.latency.add("ge_compute", 1.25)
    return stats


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        assert cache.get(job) is None
        cache.put(job, make_stats())
        got = cache.get(job)
        assert got is not None
        assert got.to_dict() == make_stats().to_dict()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_persistent_across_instances(self, tmp_path, job):
        ResultCache(tmp_path).put(job, make_stats())
        fresh = ResultCache(tmp_path)
        assert fresh.get(job) is not None
        assert fresh.stats.hits == 1

    def test_len_counts_entries(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(job, make_stats())
        assert len(cache) == 1


class TestInvalidation:
    def test_invalidate(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        assert cache.invalidate(job)
        assert not cache.invalidate(job)
        assert cache.get(job) is None
        assert cache.stats.invalidations == 1

    def test_clear(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        cache.put(Job("spmv", "WV"), make_stats())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestHitRecency:
    def test_get_refreshes_entry_mtime(self, tmp_path, job):
        """A hit keeps the entry young in prune's oldest-first order
        (shard reuse refreshes shard mtimes the same way)."""
        import os
        import time

        cache = ResultCache(tmp_path)
        path = cache.put(job, make_stats())
        stamp = time.time() - 500
        os.utime(path, (stamp, stamp))
        assert cache.get(job) is not None
        assert path.stat().st_mtime > stamp + 100

    def test_peek_leaves_mtime_alone(self, tmp_path, job):
        import os
        import time

        cache = ResultCache(tmp_path)
        path = cache.put(job, make_stats())
        stamp = time.time() - 500
        os.utime(path, (stamp, stamp))
        assert cache.peek(job) is not None
        assert path.stat().st_mtime == pytest.approx(stamp, abs=1.0)


class TestPeek:
    def test_peek_reads_without_counting(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        assert cache.peek(job) is None
        cache.put(job, make_stats())
        got = cache.peek(job)
        assert got is not None
        assert got.to_dict() == make_stats().to_dict()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0


class TestInventoryAndPrune:
    def put_aged(self, cache, job, age):
        """Store one entry and backdate its mtime by ``age`` seconds."""
        import os
        import time

        path = cache.put(job, make_stats())
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return path

    def test_entries_oldest_first(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        newer = Job("spmv", "WV")
        self.put_aged(cache, job, age=100)
        self.put_aged(cache, newer, age=10)
        entries = cache.entries()
        assert [e.key for e in entries] == [job.content_key(),
                                            newer.content_key()]
        assert all(e.bytes > 0 for e in entries)
        assert cache.total_bytes() == sum(e.bytes for e in entries)

    def test_prune_evicts_oldest_first(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        newer = Job("spmv", "WV")
        self.put_aged(cache, job, age=100)
        keep = self.put_aged(cache, newer, age=10)
        evicted = cache.prune(keep.stat().st_size)
        assert [e.key for e in evicted] == [job.content_key()]
        assert cache.get(newer) is not None
        assert cache.get(job) is None
        assert cache.stats.invalidations == 1

    def test_prune_zero_clears_everything(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        cache.put(Job("spmv", "WV"), make_stats())
        assert len(cache.prune(0)) == 2
        assert cache.total_bytes() == 0
        assert len(cache) == 0

    def test_prune_noop_under_budget(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        assert cache.prune(10 ** 9) == []
        assert len(cache) == 1

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(CacheError):
            ResultCache(tmp_path).prune(-1)


class TestShardAccounting:
    """Regression: prepared shard directories (``shards/<digest>/``)
    used to be invisible to entries()/total_bytes()/prune()/clear()
    and grew without bound on long-lived services."""

    def make_shard(self, cache, name="a" * 64, payload=4096, age=0.0):
        import os
        import time

        shard = cache.cache_dir / "shards" / name
        shard.mkdir(parents=True)
        (shard / "block_0_0.bin").write_bytes(b"\0" * payload)
        (shard / "manifest.json").write_text("{}")
        if age:
            stamp = time.time() - age
            os.utime(shard, (stamp, stamp))
        return shard

    def test_shards_counted_in_stats(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        shard = self.make_shard(cache)
        shards = cache.shard_entries()
        assert [entry.key for entry in shards] == [shard.name]
        assert shards[0].kind == "shard"
        assert shards[0].bytes >= 4096
        assert cache.total_bytes() == \
            sum(e.bytes for e in cache.entries()) + shards[0].bytes

    def test_prune_below_shard_size_evicts_the_shard(self, tmp_path,
                                                     job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        shard = self.make_shard(cache, age=100)  # older than the entry
        budget = cache.total_bytes() - 1
        evicted = cache.prune(budget)
        assert [entry.key for entry in evicted] == [shard.name]
        assert not shard.exists()
        assert cache.get(job) is not None
        assert cache.total_bytes() <= budget

    def dead_pid(self):
        import subprocess

        child = subprocess.Popen(["true"])
        child.wait()
        return child.pid

    def test_prune_zero_leaves_directory_empty(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        self.make_shard(cache)
        # Abandoned scratch dir from a crashed (dead-pid) builder.
        self.make_shard(cache,
                        name=f"{'b' * 60}.tmp.{self.dead_pid()}")
        evicted = cache.prune(0)
        assert len(evicted) == 3
        assert cache.total_bytes() == 0
        assert list(cache.cache_dir.iterdir()) == []

    def test_live_builder_scratch_dir_is_protected(self, tmp_path,
                                                   job):
        import os

        cache = ResultCache(tmp_path)
        scratch = self.make_shard(
            cache, name=f"{'d' * 60}.tmp.{os.getpid()}")
        assert cache.shard_entries() == []
        assert cache.prune(0) == []
        assert scratch.exists()

    def test_hour_stale_scratch_dir_is_evictable(self, tmp_path, job):
        """A recycled pid must not protect an abandoned build forever:
        past the grace period the scratch dir is reclaimed even though
        its pid number is occupied (by this very test process)."""
        import os

        cache = ResultCache(tmp_path)
        scratch = self.make_shard(
            cache, name=f"{'e' * 60}.tmp.{os.getpid()}", age=7200)
        assert [entry.key for entry in cache.shard_entries()] == \
            [scratch.name]
        assert len(cache.prune(0)) == 1
        assert not scratch.exists()

    def test_shard_reuse_refreshes_eviction_age(self, tmp_path, job):
        """A reused shard must not be evicted before idle entries."""
        from repro.core.config import GraphRConfig
        from repro.core.outofcore import prepare_on_disk
        from repro.graph.generators import rmat
        from repro.runtime.shards import prepared_block_dir, shard_key

        import os
        import time

        cache = ResultCache(tmp_path)
        config = GraphRConfig(mode="analytic", block_size=16)
        graph = rmat(5, 80, seed=3, weighted=False, name="shardy")
        shard = prepared_block_dir(graph, config, tmp_path,
                                   dataset="WV", dataset_seed=7,
                                   weighted=False)
        stamp = time.time() - 500
        os.utime(shard, (stamp, stamp))
        path = cache.put(job, make_stats())
        os.utime(path, (time.time() - 100,) * 2)
        # Reuse touches the shard, making it the *newest* artifact.
        again = prepared_block_dir(graph, config, tmp_path,
                                   dataset="WV", dataset_seed=7,
                                   weighted=False)
        assert again == shard
        budget = cache.shard_entries()[0].bytes
        evicted = cache.prune(budget)
        assert [e.key for e in evicted] == [job.content_key()]
        assert shard.exists()

    def test_prune_eviction_order_interleaves_kinds(self, tmp_path,
                                                    job):
        cache = ResultCache(tmp_path)
        older = self.make_shard(cache, age=200)
        path = cache.put(job, make_stats())
        import os
        import time
        stamp = time.time() - 100
        os.utime(path, (stamp, stamp))
        newer = self.make_shard(cache, name="c" * 64, age=10)
        budget = cache.shard_entries()[-1].bytes  # keep newest shard
        evicted = cache.prune(budget)
        assert [e.key for e in evicted] == [older.name,
                                            job.content_key()]
        assert newer.exists()

    def test_clear_removes_shards(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        self.make_shard(cache)
        assert cache.clear() == 2
        assert cache.total_bytes() == 0
        assert not (tmp_path / "shards").exists()


class TestPoisonedEntries:
    def test_corrupt_file_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        path = cache.path_for(job)
        path.parent.mkdir(parents=True)
        path.write_text("garbage{")
        assert cache.get(job) is None
        assert cache.stats.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_missing_stats_block_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        del payload["stats"]
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_malformed_stats_block_is_a_miss(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["stats"]["energy_breakdown"] = {"adc": -1.0}
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_foreign_job_payload_is_a_miss(self, tmp_path, job):
        """An entry whose embedded job differs from the requester is
        never trusted (hash collision / hand-edited file)."""
        cache = ResultCache(tmp_path)
        cache.put(job, make_stats())
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["job"]["algorithm"] = "bfs"
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None
