"""Tests for the durable SQLite job store."""

from __future__ import annotations

import pytest

from repro.errors import JobError
from repro.runtime.job import Job
from repro.service.store import JOB_STATES, JobStore


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.db")
    yield store
    store.close()


JOB = Job("spmv", "WV")
OTHER = Job("pagerank", "WV", run_kwargs={"max_iterations": 3})


class TestSubmit:
    def test_new_submission_is_queued(self, store):
        record, created = store.submit(JOB)
        assert created
        assert record.state == "queued"
        assert record.attempts == 0
        assert record.content_key == JOB.content_key()
        assert record.job().content_key() == JOB.content_key()

    def test_identical_content_keys_dedupe(self, store):
        first, created_first = store.submit(JOB)
        second, created_second = store.submit(JOB)
        assert created_first and not created_second
        assert first.id == second.id
        assert len(store) == 1

    def test_equivalent_spellings_share_one_row(self, store):
        store.submit(Job("spmv", "WV"))
        _, created = store.submit(Job("spmv", "wv"))
        assert not created
        assert len(store) == 1

    def test_from_cache_submission_is_done_instantly(self, store):
        record, created = store.submit(JOB, from_cache=True)
        assert not created
        assert record.state == "done"
        assert record.from_cache
        assert record.finished_at is not None

    def test_failed_job_is_revived_by_resubmission(self, store):
        record, _ = store.submit(JOB)
        assert store.claim(record.id)
        store.bump_attempts(record.id)
        store.finish(record.id, ok=False, error="boom")
        assert store.get(record.id).state == "failed"

        revived, created = store.submit(JOB, priority=7)
        assert created
        assert revived.id == record.id
        assert revived.state == "queued"
        assert revived.attempts == 0
        assert revived.error is None
        assert revived.priority == 7

    def test_done_job_is_not_revived(self, store):
        record, _ = store.submit(JOB)
        store.claim(record.id)
        store.finish(record.id, ok=True)
        again, created = store.submit(JOB)
        assert not created
        assert again.state == "done"


class TestStateMachine:
    def test_claim_is_single_winner(self, store):
        record, _ = store.submit(JOB)
        assert store.claim(record.id)
        assert not store.claim(record.id)
        assert store.get(record.id).state == "running"
        assert store.get(record.id).started_at is not None

    def test_finish_requires_running(self, store):
        record, _ = store.submit(JOB)
        assert not store.finish(record.id, ok=True)
        store.claim(record.id)
        assert store.finish(record.id, ok=True)
        assert store.get(record.id).state == "done"

    def test_cancel_only_queued(self, store):
        record, _ = store.submit(JOB)
        assert store.cancel(record.id) is True
        assert store.get(record.id).state == "cancelled"
        assert store.cancel(record.id) is False
        assert store.cancel("jdeadbeef") is None

    def test_bump_attempts_counts_and_unknown_raises(self, store):
        record, _ = store.submit(JOB)
        assert store.bump_attempts(record.id) == 1
        assert store.bump_attempts(record.id) == 2
        with pytest.raises(JobError):
            store.bump_attempts("jdeadbeef")

    def test_requeue_terminal_rows_only(self, store):
        record, _ = store.submit(JOB)
        assert not store.requeue(record.id)  # still queued
        store.claim(record.id)
        store.finish(record.id, ok=True)
        assert store.requeue(record.id)
        requeued = store.get(record.id)
        assert requeued.state == "queued"
        assert requeued.attempts == 0


class TestRecovery:
    def test_running_jobs_requeue_on_recover(self, store):
        record, _ = store.submit(JOB)
        other, _ = store.submit(OTHER)
        store.claim(record.id)
        store.bump_attempts(record.id)

        requeued = store.recover()
        assert [r.id for r in requeued] == [record.id]
        assert store.get(record.id).state == "queued"
        # Attempts survive the restart: a crash-looping job still
        # exhausts its budget.
        assert store.get(record.id).attempts == 1
        assert store.get(other.id).state == "queued"

    def test_store_survives_reopen(self, tmp_path):
        first = JobStore(tmp_path / "jobs.db")
        record, _ = first.submit(JOB)
        first.claim(record.id)
        first.close()

        second = JobStore(tmp_path / "jobs.db")
        assert second.get(record.id).state == "running"
        assert [r.id for r in second.recover()] == [record.id]
        # Dedup still holds across the restart.
        _, created = second.submit(JOB)
        assert not created
        second.close()


class TestQueries:
    def test_counts_cover_every_state(self, store):
        assert store.counts() == {state: 0 for state in JOB_STATES}
        store.submit(JOB)
        assert store.counts()["queued"] == 1

    def test_list_filters_and_validates_state(self, store):
        record, _ = store.submit(JOB)
        store.submit(OTHER)
        assert len(store.list()) == 2
        assert [r.id for r in store.list(state="queued",
                                         limit=1)] != []
        store.cancel(record.id)
        assert [r.id for r in store.list(state="cancelled")] == \
            [record.id]
        with pytest.raises(JobError):
            store.list(state="exploded")

    def test_resubmit_escalates_queued_priority(self, store):
        record, _ = store.submit(JOB, priority=0)
        escalated, created = store.submit(JOB, priority=10)
        assert created                      # caller must re-enqueue
        assert escalated.id == record.id
        assert escalated.priority == 10
        # Lower or equal priority never de-escalates.
        same, created = store.submit(JOB, priority=3)
        assert not created
        assert same.priority == 10

    def test_queued_records_priority_order(self, store):
        low, _ = store.submit(JOB, priority=0)
        high, _ = store.submit(OTHER, priority=9)
        assert [r.id for r in store.queued_records()] == \
            [high.id, low.id]

    def test_done_since(self, store):
        record, _ = store.submit(JOB)
        store.claim(record.id)
        store.finish(record.id, ok=True)
        assert store.done_since(0.0) == 1
        assert store.done_since(store.get(record.id).finished_at
                                + 1.0) == 0
