"""Tests for the multi-node GraphR extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank_reference
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.multinode import MultiNodeConfig, MultiNodeGraphR
from repro.errors import ConfigError
from repro.graph.generators import rmat


@pytest.fixture
def graph():
    return rmat(8, 3000, seed=17, weighted=True, name="cluster-test")


class TestConfig:
    def test_defaults(self):
        cfg = MultiNodeConfig()
        assert cfg.num_nodes == 4
        assert cfg.node.mode == "analytic"

    def test_invalid(self):
        with pytest.raises(ConfigError):
            MultiNodeConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            MultiNodeConfig(link_bandwidth_bps=0)

    def test_repr(self):
        assert "nodes=4" in repr(MultiNodeGraphR())

    def test_sparsity_ablation_rejected(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(
            num_nodes=2,
            node=GraphRConfig(mode="analytic",
                              skip_empty_subgraphs=False)))
        with pytest.raises(ConfigError, match="skip_empty_subgraphs"):
            cluster.run("pagerank", graph, max_iterations=2)


class TestPartitioning:
    def test_stripes_cover_vertex_space(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=3))
        stripes = cluster._stripes(graph)
        assert stripes[0][0] == 0
        assert stripes[-1][1] == graph.num_vertices
        for (_, hi), (lo, _) in zip(stripes, stripes[1:]):
            assert hi == lo

    def test_node_graphs_partition_edges(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4))
        stripes = cluster._stripes(graph)
        total = sum(cluster._node_graph(graph, s).num_edges
                    for s in stripes)
        assert total == graph.num_edges

    def test_node_graph_keeps_global_ids(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4))
        stripe = cluster._stripes(graph)[2]
        sub = cluster._node_graph(graph, stripe)
        assert sub.num_vertices == graph.num_vertices
        dst = np.asarray(sub.adjacency.cols)
        assert np.all((dst >= stripe[0]) & (dst < stripe[1]))


class TestExecution:
    def test_values_match_reference(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4))
        result, stats = cluster.run("pagerank", graph, max_iterations=5)
        reference = pagerank_reference(graph, max_iterations=5)
        assert np.allclose(result.values, reference.values)
        assert stats.platform == "graphr-multinode"
        assert stats.extra["num_nodes"] == 4

    def test_exchange_charged_per_iteration(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=2))
        _, stats = cluster.run("pagerank", graph, max_iterations=5)
        per_round = (graph.num_vertices * 4
                     / cluster.config.link_bandwidth_bps
                     + cluster.config.link_latency_s)
        assert stats.latency.seconds_of("exchange") \
            == pytest.approx(5 * per_round)

    def test_active_list_algorithm(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4))
        result, stats = cluster.run("sssp", graph, source=0)
        from repro.algorithms.sssp import sssp_reference
        reference = sssp_reference(graph, source=0)
        assert np.array_equal(result.values, reference.values)
        assert stats.iterations == reference.iterations

    def test_scaling_helps_compute_bound_runs(self):
        """With the exchange nearly free, more nodes must not be slower
        than one node on a compute-heavy workload."""
        dense = rmat(7, 6000, seed=3, name="dense")
        fast_link = MultiNodeConfig(num_nodes=8,
                                    link_bandwidth_bps=1e12,
                                    link_latency_s=0.0)
        one = MultiNodeGraphR(MultiNodeConfig(
            num_nodes=1, link_bandwidth_bps=1e12, link_latency_s=0.0))
        eight = MultiNodeGraphR(fast_link)
        _, s1 = one.run("pagerank", dense, max_iterations=5)
        _, s8 = eight.run("pagerank", dense, max_iterations=5)
        assert s8.seconds <= s1.seconds

    def test_single_node_matches_graphr_order_of_magnitude(self, graph):
        """One multinode stripe ~ a single GraphR node (same cost
        model, plus exchange)."""
        single = GraphR(GraphRConfig(mode="analytic"))
        _, mono = single.run("pagerank", graph, max_iterations=5)
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=1))
        _, multi = cluster.run("pagerank", graph, max_iterations=5)
        assert multi.seconds == pytest.approx(mono.seconds, rel=0.5)
