"""Unit + property tests for the Section 3.4 preprocessing pass.

The key property: sorting edges by the computed global order ID yields
exactly the hierarchical traversal (column-major blocks, column-major
subgraph tiles, column-major within tiles), and consecutive positions
differ by their zero-inclusive distance in the traversal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph.coo import COOMatrix
from repro.graph.generators import rmat
from repro.graph.preprocess import (
    GraphROrdering,
    global_order_id,
    preprocess_edge_list,
)


def brute_force_ids(ordering: GraphROrdering) -> np.ndarray:
    """Walk the traversal explicitly, numbering every matrix position."""
    v = ordering.padded_vertices
    b = ordering.block_size
    tr, tc = ordering.tile_rows, ordering.tile_cols
    pr, pc = ordering.padded_block
    ids = np.zeros((v, v), dtype=np.int64)
    counter = 0
    side = ordering.blocks_per_side
    for bj in range(side):
        for bi in range(side):
            for tj in range(pc // tc):
                for ti in range(pr // tr):
                    for cj in range(tc):
                        for ci in range(tr):
                            row = bi * b + ti * tr + ci
                            col = bj * b + tj * tc + cj
                            if row < v and col < v:
                                ids[row, col] = counter
                            counter += 1
    return ids


class TestGlobalOrderID:
    def test_matches_brute_force_small(self):
        ordering = GraphROrdering(num_vertices=16, block_size=8,
                                  crossbar_size=2, crossbars_per_ge=2,
                                  num_ges=1)
        expected = brute_force_ids(ordering)
        rows, cols = np.meshgrid(np.arange(16), np.arange(16),
                                 indexing="ij")
        got = global_order_id(ordering, rows.ravel(), cols.ravel())
        assert np.array_equal(got, expected.ravel())

    def test_matches_brute_force_figure12(self):
        # The paper's running example: V=64, B=32, C=4, N=2, G=2.
        ordering = GraphROrdering(num_vertices=64, block_size=32,
                                  crossbar_size=4, crossbars_per_ge=2,
                                  num_ges=2)
        expected = brute_force_ids(ordering)
        rows, cols = np.meshgrid(np.arange(64), np.arange(64),
                                 indexing="ij")
        got = global_order_id(ordering, rows.ravel(), cols.ravel())
        assert np.array_equal(got, expected.ravel())

    def test_ids_are_unique_per_position(self):
        ordering = GraphROrdering(num_vertices=12, block_size=6,
                                  crossbar_size=3)
        rows, cols = np.meshgrid(np.arange(12), np.arange(12),
                                 indexing="ij")
        ids = global_order_id(ordering, rows.ravel(), cols.ravel())
        assert np.unique(ids).size == ids.size

    def test_zero_distance_property(self):
        """Two edges k positions apart differ by exactly k in ID."""
        ordering = GraphROrdering(num_vertices=8, block_size=8,
                                  crossbar_size=2)
        # Column-major within a tile: (0,0) then (1,0) are adjacent.
        first = global_order_id(ordering, np.array([0]), np.array([0]))
        second = global_order_id(ordering, np.array([1]), np.array([0]))
        assert second[0] - first[0] == 1

    def test_out_of_range_rejected(self):
        ordering = GraphROrdering(num_vertices=8, block_size=8,
                                  crossbar_size=2)
        with pytest.raises(PartitionError):
            global_order_id(ordering, np.array([99]), np.array([0]))

    def test_negative_rejected(self):
        ordering = GraphROrdering(num_vertices=8, block_size=8,
                                  crossbar_size=2)
        with pytest.raises(PartitionError):
            global_order_id(ordering, np.array([-1]), np.array([0]))

    def test_length_mismatch(self):
        ordering = GraphROrdering(num_vertices=8, block_size=8,
                                  crossbar_size=2)
        with pytest.raises(PartitionError):
            global_order_id(ordering, np.array([0, 1]), np.array([0]))


class TestPreprocess:
    def test_sorted_output(self):
        graph = rmat(7, 400, seed=3)
        ordering = GraphROrdering(num_vertices=graph.num_vertices,
                                  block_size=64, crossbar_size=4,
                                  crossbars_per_ge=2, num_ges=2)
        pre = preprocess_edge_list(graph.adjacency, ordering)
        ids = global_order_id(ordering, np.asarray(pre.rows),
                              np.asarray(pre.cols))
        assert np.all(np.diff(ids) >= 0)

    def test_preserves_edges(self):
        graph = rmat(6, 150, seed=4, weighted=True)
        ordering = GraphROrdering(num_vertices=graph.num_vertices,
                                  block_size=32, crossbar_size=4)
        pre = preprocess_edge_list(graph.adjacency, ordering)
        assert np.array_equal(pre.to_dense(),
                              graph.adjacency.to_dense())

    def test_non_square_rejected(self):
        ordering = GraphROrdering(num_vertices=4, block_size=4,
                                  crossbar_size=2)
        with pytest.raises(PartitionError):
            preprocess_edge_list(COOMatrix((4, 5), [0], [1], [1.0]),
                                 ordering)

    def test_vertex_count_mismatch(self):
        ordering = GraphROrdering(num_vertices=8, block_size=4,
                                  crossbar_size=2)
        with pytest.raises(PartitionError):
            preprocess_edge_list(COOMatrix.empty((4, 4)), ordering)

    def test_duplicates_kept_stable(self):
        coo = COOMatrix((4, 4), [1, 1, 0], [1, 1, 0], [10.0, 20.0, 5.0])
        ordering = GraphROrdering(num_vertices=4, block_size=4,
                                  crossbar_size=2)
        pre = preprocess_edge_list(coo, ordering)
        dup_vals = [v for r, c, v in pre if (r, c) == (1, 1)]
        assert dup_vals == [10.0, 20.0]


class TestOrderingGeometry:
    def test_derived_properties(self):
        o = GraphROrdering(num_vertices=64, block_size=32,
                           crossbar_size=4, crossbars_per_ge=2, num_ges=2)
        assert o.tile_rows == 4
        assert o.tile_cols == 16
        assert o.blocks_per_side == 2
        assert o.subgraph_grid == (8, 2)
        assert o.entries_per_subgraph == 64
        assert o.entries_per_block == 32 * 32

    def test_invalid_params(self):
        with pytest.raises(PartitionError):
            GraphROrdering(num_vertices=0, block_size=4, crossbar_size=2)

    def test_partition_helpers(self):
        o = GraphROrdering(num_vertices=64, block_size=32,
                           crossbar_size=4, crossbars_per_ge=2, num_ges=2)
        assert o.block_partition().blocks_per_side == 2
        assert o.grid().tile_cols == 16


@settings(max_examples=30, deadline=None)
@given(
    scale=st.integers(min_value=3, max_value=6),
    edges=st.integers(min_value=1, max_value=120),
    crossbar=st.sampled_from([2, 4]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_preprocess_is_permutation(scale, edges, crossbar, seed):
    """Preprocessing must be a pure permutation of the edge list and
    sort it by global order ID, for arbitrary geometry."""
    graph = rmat(scale, edges, seed=seed, weighted=True)
    n = graph.num_vertices
    ordering = GraphROrdering(num_vertices=n, block_size=max(crossbar, n // 2),
                              crossbar_size=crossbar, crossbars_per_ge=2,
                              num_ges=1)
    pre = preprocess_edge_list(graph.adjacency, ordering)
    assert pre.nnz == graph.num_edges
    assert np.array_equal(pre.to_dense(), graph.adjacency.to_dense())
    ids = global_order_id(ordering, np.asarray(pre.rows),
                          np.asarray(pre.cols))
    assert np.all(np.diff(ids) >= 0)
