"""REP2xx concurrency-rule tests: the execution-context classifier,
the held-lock dataflow, and a violating/clean fixture pair per rule
asserting exact rule IDs and line numbers (mirroring
``test_lint_rules.py``).
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis import LintPolicy, run_lint
from repro.analysis.contexts import (TAG_FINALIZER, TAG_PROCESS,
                                     TAG_THREAD, context_map)
from repro.analysis.locks import held_lock_map
from repro.analysis.model import ProjectModel


def make_pkg(tmp_path: Path, files: dict) -> Path:
    pkg = tmp_path / "fixturepkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for rel, text in files.items():
        (pkg / rel).write_text(textwrap.dedent(text))
    return pkg


def lint(pkg: Path, policy: LintPolicy, rule: str):
    return run_lint([pkg], select=[rule], policy=policy).findings


def hits(findings, rule):
    return [(f.rule, f.line) for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# The execution-context classifier
# ----------------------------------------------------------------------
class TestContextClassifier:
    SOURCE = {"workers.py": """\
        import atexit
        import threading
        from multiprocessing import Process


        def thread_target():
            helper()


        def helper():
            return 1


        def process_target():
            return 2


        def exit_hook():
            return 3


        def untouched():
            return 4


        def main():
            threading.Thread(target=thread_target).start()
            Process(target=process_target).start()
            atexit.register(exit_hook)
        """}

    def _tags(self, tmp_path):
        pkg = make_pkg(tmp_path, self.SOURCE)
        model = ProjectModel([pkg])
        cmap = context_map(model, LintPolicy())
        return {info.qualname.split(":")[1]: cmap.tags_of(info.node)
                for info in model.functions()}

    def test_thread_spawn_tags_target(self, tmp_path):
        tags = self._tags(tmp_path)
        assert tags["thread_target"] == {TAG_THREAD}

    def test_tag_propagates_through_calls(self, tmp_path):
        tags = self._tags(tmp_path)
        assert tags["helper"] == {TAG_THREAD}

    def test_process_spawn_tags_target(self, tmp_path):
        tags = self._tags(tmp_path)
        assert tags["process_target"] == {TAG_PROCESS}

    def test_atexit_registration_tags_finalizer(self, tmp_path):
        tags = self._tags(tmp_path)
        assert tags["exit_hook"] == {TAG_FINALIZER}

    def test_unspawned_functions_stay_main(self, tmp_path):
        tags = self._tags(tmp_path)
        assert tags["untouched"] == frozenset()
        assert tags["main"] == frozenset()

    def test_spawn_sites_recorded(self, tmp_path):
        pkg = make_pkg(tmp_path, self.SOURCE)
        model = ProjectModel([pkg])
        cmap = context_map(model, LintPolicy())
        tags = {site.tag for site in cmap.sites}
        assert tags == {TAG_THREAD, TAG_PROCESS, TAG_FINALIZER}


# ----------------------------------------------------------------------
# The held-lock dataflow
# ----------------------------------------------------------------------
def _func(source: str) -> ast.FunctionDef:
    return ast.parse(textwrap.dedent(source)).body[0]


def _held_at_calls(func, lock_exprs):
    """``call name -> held locks`` for every call in the function."""
    held = held_lock_map(func, lock_exprs)
    out = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name):
            out[node.func.id] = held[id(node)]
    return out


class TestHeldLockMap:
    def test_with_block_holds_and_releases(self):
        func = _func("""\
            def f(self):
                before()
                with self._lock:
                    inside()
                after()
            """)
        at = _held_at_calls(func, {"self._lock"})
        assert at["before"] == frozenset()
        assert at["inside"] == {"self._lock"}
        assert at["after"] == frozenset()

    def test_nested_with_accumulates(self):
        func = _func("""\
            def f(self):
                with self._outer:
                    with self._inner:
                        both()
                    one()
            """)
        at = _held_at_calls(func, {"self._outer", "self._inner"})
        assert at["both"] == {"self._outer", "self._inner"}
        assert at["one"] == {"self._outer"}

    def test_multi_item_with(self):
        func = _func("""\
            def f(self):
                with self._lock, self._conn:
                    inside()
            """)
        at = _held_at_calls(func, {"self._lock", "self._conn"})
        assert at["inside"] == {"self._lock", "self._conn"}

    def test_alias_counts_as_the_same_lock(self):
        func = _func("""\
            def f(self):
                lock = self._lock
                with lock:
                    inside()
            """)
        at = _held_at_calls(func, {"self._lock"})
        assert at["inside"] == {"lock"}

    def test_acquire_release_linear(self):
        func = _func("""\
            def f(self):
                self._lock.acquire()
                inside()
                self._lock.release()
                after()
            """)
        at = _held_at_calls(func, {"self._lock"})
        assert at["inside"] == {"self._lock"}
        assert at["after"] == frozenset()

    def test_nested_def_body_is_not_under_the_lock(self):
        func = _func("""\
            def f(self):
                with self._lock:
                    def cb():
                        later()
                    register(cb)
            """)
        at = _held_at_calls(func, {"self._lock"})
        assert at["later"] == frozenset()
        assert at["register"] == {"self._lock"}


# ----------------------------------------------------------------------
# REP201 — lock discipline
# ----------------------------------------------------------------------
class TestREP201:
    policy = LintPolicy()

    def test_unlocked_write_from_thread_context_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"tally.py": """\
            import threading


            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    self.total += 1
            """})
        findings = lint(pkg, self.policy, "REP201")
        assert hits(findings, "REP201") == [("REP201", 13)]
        assert "self.total" in findings[0].message

    def test_locked_write_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"tally.py": """\
            import threading


            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    with self._lock:
                        self.total += 1
            """})
        assert lint(pkg, self.policy, "REP201") == ()

    def test_cross_class_unlocked_read_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"pair.py": """\
            import threading


            class Owner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1


            class Reader:
                def __init__(self, owner: Owner):
                    self.owner = owner

                def spawn(self):
                    threading.Thread(target=self.snapshot).start()

                def snapshot(self):
                    return {"total": self.owner.total}
            """})
        findings = lint(pkg, self.policy, "REP201")
        assert hits(findings, "REP201") == [("REP201", 22)]
        assert "locked accessor" in findings[0].message

    def test_locked_accessor_read_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"pair.py": """\
            import threading


            class Owner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1

                def totals(self):
                    with self._lock:
                        return self.total


            class Reader:
                def __init__(self, owner: Owner):
                    self.owner = owner

                def spawn(self):
                    threading.Thread(target=self.snapshot).start()

                def snapshot(self):
                    return {"total": self.owner.totals()}
            """})
        assert lint(pkg, self.policy, "REP201") == ()

    def test_threadsafe_typed_field_is_exempt(self, tmp_path):
        pkg = make_pkg(tmp_path, {"tally.py": """\
            import queue
            import threading


            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inbox = queue.Queue()

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    self._inbox.put(1)
            """})
        assert lint(pkg, self.policy, "REP201") == ()


# ----------------------------------------------------------------------
# REP202 — fork safety
# ----------------------------------------------------------------------
class TestREP202:
    policy = LintPolicy()

    def test_prefork_lock_used_in_worker_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"pool.py": """\
            import threading
            from multiprocessing import Process

            _LOCK = threading.Lock()


            def handle():
                with _LOCK:
                    return 1


            def spawn():
                proc = Process(target=handle)
                proc.start()
                return proc
            """})
        findings = lint(pkg, self.policy, "REP202")
        assert hits(findings, "REP202") == [("REP202", 8)]
        assert "_LOCK" in findings[0].message

    def test_after_fork_reset_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"pool.py": """\
            import os
            import threading
            from multiprocessing import Process

            _LOCK = threading.Lock()


            def _reset():
                global _LOCK
                _LOCK = threading.Lock()


            if hasattr(os, "register_at_fork"):
                os.register_at_fork(after_in_child=_reset)


            def handle():
                with _LOCK:
                    return 1


            def spawn():
                proc = Process(target=handle)
                proc.start()
                return proc
            """})
        assert lint(pkg, self.policy, "REP202") == ()

    def test_close_in_child_is_allowed(self, tmp_path):
        pkg = make_pkg(tmp_path, {"pool.py": """\
            import sqlite3
            from multiprocessing import Process


            class Holder:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def _in_child(self):
                    self._conn.close()

                def spawn(self):
                    proc = Process(target=self._in_child)
                    proc.start()
                    return proc
            """})
        assert lint(pkg, self.policy, "REP202") == ()


# ----------------------------------------------------------------------
# REP203 — blocking call without timeout
# ----------------------------------------------------------------------
class TestREP203:
    policy = LintPolicy()

    def test_bare_queue_get_in_thread_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"puller.py": """\
            import queue
            import threading


            class Puller:
                def __init__(self):
                    self._queue = queue.Queue()

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while True:
                        item = self._queue.get()
                        if item is None:
                            return
            """})
        findings = lint(pkg, self.policy, "REP203")
        assert hits(findings, "REP203") == [("REP203", 14)]
        assert "timeout" in findings[0].message

    def test_get_with_timeout_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"puller.py": """\
            import queue
            import threading


            class Puller:
                def __init__(self):
                    self._queue = queue.Queue()

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while True:
                        try:
                            item = self._queue.get(timeout=0.5)
                        except queue.Empty:
                            continue
                        if item is None:
                            return
            """})
        assert lint(pkg, self.policy, "REP203") == ()

    def test_poll_guarded_recv_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"pipes.py": """\
            import threading


            class Reader:
                def __init__(self, conn):
                    self.conn = conn

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while True:
                        if self.conn.poll(1.0):
                            payload = self.conn.recv()
                            if payload is None:
                                return
            """})
        assert lint(pkg, self.policy, "REP203") == ()

    def test_untagged_function_not_checked(self, tmp_path):
        pkg = make_pkg(tmp_path, {"puller.py": """\
            import queue


            def drain(q: queue.Queue):
                return q.get()
            """})
        assert lint(pkg, self.policy, "REP203") == ()

    def test_policy_exemption_silences_with_reason(self, tmp_path):
        policy = LintPolicy(blocking_wait_allowed=(
            ("fixturepkg.puller:Puller._loop",
             "sentinel shutdown by design"),))
        pkg = make_pkg(tmp_path, {"puller.py": """\
            import queue
            import threading


            class Puller:
                def __init__(self):
                    self._queue = queue.Queue()

                def spawn(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while True:
                        item = self._queue.get()
                        if item is None:
                            return
            """})
        assert lint(pkg, policy, "REP203") == ()


# ----------------------------------------------------------------------
# REP204 — no blocking under lock
# ----------------------------------------------------------------------
class TestREP204:
    policy = LintPolicy()

    def test_sleep_under_lock_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"keeper.py": """\
            import threading
            import time


            class Keeper:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def purge(self):
                    with self._lock:
                        del self.items[:]
                        time.sleep(0.1)
            """})
        findings = lint(pkg, self.policy, "REP204")
        assert hits(findings, "REP204") == [("REP204", 13)]
        assert "sleep" in findings[0].message

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"keeper.py": """\
            import threading
            import time


            class Keeper:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def purge(self):
                    with self._lock:
                        del self.items[:]
                    time.sleep(0.1)
            """})
        assert lint(pkg, self.policy, "REP204") == ()

    def test_blocking_call_in_helper_under_lock_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"keeper.py": """\
            import threading
            import time


            class Keeper:
                def __init__(self):
                    self._lock = threading.Lock()

                def _nap(self):
                    time.sleep(0.1)

                def purge(self):
                    with self._lock:
                        self._nap()
            """})
        findings = lint(pkg, self.policy, "REP204")
        assert hits(findings, "REP204") == [("REP204", 14)]


# ----------------------------------------------------------------------
# REP205 — finalizer safety
# ----------------------------------------------------------------------
class TestREP205:
    policy = LintPolicy()

    def test_logging_from_atexit_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"cleanup.py": """\
            import atexit
            import logging


            def _cleanup():
                logging.shutdown()


            atexit.register(_cleanup)
            """})
        findings = lint(pkg, self.policy, "REP205")
        assert hits(findings, "REP205") == [("REP205", 6)]
        assert "finalizer" in findings[0].message

    def test_allowlisted_calls_are_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"cleanup.py": """\
            import atexit
            import shutil

            SCRATCH = "/tmp/fixture-scratch"


            def _cleanup():
                shutil.rmtree(SCRATCH)


            atexit.register(_cleanup)
            """})
        assert lint(pkg, self.policy, "REP205") == ()

    def test_project_helper_checked_recursively(self, tmp_path):
        pkg = make_pkg(tmp_path, {"cleanup.py": """\
            import atexit
            import logging


            def _cleanup():
                _helper()


            def _helper():
                logging.shutdown()


            atexit.register(_cleanup)
            """})
        findings = lint(pkg, self.policy, "REP205")
        assert hits(findings, "REP205") == [("REP205", 10)]


# ----------------------------------------------------------------------
# REP206 — claim-protocol state machine
# ----------------------------------------------------------------------
class TestREP206:
    policy = LintPolicy(
        claim_acquire_callees=frozenset({"claim"}),
        claim_release_callees=frozenset({"unclaim"}))

    def test_unprotected_call_while_held_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"claims.py": """\
            def claim(name):
                return name


            def unclaim(lock):
                return lock


            def build(name, publish):
                lock = claim(name)
                if lock is not None:
                    publish(name)
                    unclaim(lock)
                return None
            """})
        findings = lint(pkg, self.policy, "REP206")
        assert hits(findings, "REP206") == [("REP206", 12)]
        assert "exception path" in findings[0].message

    def test_early_return_while_held_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"claims.py": """\
            def claim(name):
                return name


            def build(name):
                lock = claim(name)
                if lock is not None:
                    return name
                return None
            """})
        findings = lint(pkg, self.policy, "REP206")
        assert hits(findings, "REP206") == [("REP206", 8)]
        assert "release" in findings[0].message

    def test_try_finally_release_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"claims.py": """\
            def claim(name):
                return name


            def unclaim(lock):
                return lock


            def build(name, publish):
                lock = claim(name)
                if lock is not None:
                    try:
                        publish(name)
                    finally:
                        unclaim(lock)
                return None
            """})
        assert lint(pkg, self.policy, "REP206") == ()

    def test_none_branch_needs_no_release(self, tmp_path):
        pkg = make_pkg(tmp_path, {"claims.py": """\
            def claim(name):
                return name


            def unclaim(lock):
                return lock


            def build(name, wait):
                lock = claim(name)
                if lock is None:
                    wait(name)
                    return None
                unclaim(lock)
                return name
            """})
        assert lint(pkg, self.policy, "REP206") == ()

    def test_inactive_without_policy_callees(self, tmp_path):
        pkg = make_pkg(tmp_path, {"claims.py": """\
            def claim(name):
                return name


            def build(name):
                lock = claim(name)
                if lock is not None:
                    return name
                return None
            """})
        assert lint(pkg, LintPolicy(), "REP206") == ()
