"""Unit tests for the CPU, GPU and PIM baseline models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CacheModel,
    CPUPlatform,
    GPUPlatform,
    PIMPlatform,
    cache_miss_rate,
)
from repro.errors import ConfigError
from repro.graph.coo import COOMatrix
from repro.graph.generators import rmat
from repro.graph.graph import Graph


class TestCacheModel:
    def test_resident_working_set_never_misses(self):
        assert cache_miss_rate(1000, 10_000) == 0.0

    def test_miss_rate_grows_with_working_set(self):
        small = cache_miss_rate(30e6, 20e6)
        large = cache_miss_rate(300e6, 20e6)
        assert 0 < small < large <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            cache_miss_rate(-1, 10)
        with pytest.raises(ConfigError):
            cache_miss_rate(10, 0)
        with pytest.raises(ConfigError):
            cache_miss_rate(10, 10, locality=1.5)

    def test_vertex_traffic_scale_factor(self):
        """Scaled analogs must inherit the *original* working set."""
        cache = CacheModel(cache_bytes=20 * 1024 * 1024)
        small = cache.vertex_traffic_per_edge(100_000, scale_factor=1.0)
        scaled = cache.vertex_traffic_per_edge(100_000, scale_factor=50.0)
        assert small == 0.0
        assert scaled > 0.0

    def test_traffic_bad_inputs(self):
        cache = CacheModel(cache_bytes=1024)
        with pytest.raises(ConfigError):
            cache.vertex_traffic_per_edge(0)
        with pytest.raises(ConfigError):
            cache.vertex_traffic_per_edge(10, scale_factor=0)


@pytest.fixture
def graph():
    return rmat(8, 2000, seed=4, weighted=True, name="bench")


class TestCPUPlatform:
    def test_run_produces_values_and_costs(self, graph):
        cpu = CPUPlatform()
        result, stats = cpu.run("pagerank", graph, max_iterations=5)
        assert stats.platform == "cpu"
        assert stats.seconds > 0
        assert stats.joules > 0
        assert result.iterations == 5

    def test_energy_is_power_times_time(self, graph):
        cpu = CPUPlatform()
        _, stats = cpu.run("pagerank", graph, max_iterations=5)
        assert stats.joules == pytest.approx(
            cpu.params.total_power_w * stats.seconds)

    def test_more_iterations_cost_more(self, graph):
        cpu = CPUPlatform()
        _, short = cpu.run("pagerank", graph, max_iterations=2)
        _, long = cpu.run("pagerank", graph, max_iterations=10)
        assert long.seconds > short.seconds

    def test_bigger_graph_costs_more(self):
        cpu = CPUPlatform()
        _, small = cpu.run("spmv", rmat(8, 500, seed=1))
        _, large = cpu.run("spmv", rmat(8, 5000, seed=1))
        assert large.seconds > small.seconds

    def test_frontier_algorithms_stream_full_grid(self):
        """GridGraph scans the edge grid per pass: SSSP iteration time
        cannot drop below the full stream."""
        cpu = CPUPlatform()
        chain = Graph.from_edges([(i, i + 1, 1.0) for i in range(50)],
                                 num_vertices=51, weighted=True)
        _, stats = cpu.run("sssp", chain, source=0)
        per_iter_floor = (chain.num_edges * 12
                          / cpu.params.dram_bandwidth_bps)
        body = stats.seconds - cpu.knobs.fixed_overhead_s
        assert body >= stats.iterations * per_iter_floor

    def test_cf_work_factor_recorded(self):
        from repro.graph.generators import bipartite_rating_graph
        ratings = bipartite_rating_graph(40, 12, 200, seed=2)
        cpu = CPUPlatform()
        _, stats = cpu.run("cf", ratings, epochs=2, features=8)
        assert stats.extra["work_factor"] == pytest.approx(
            8 * cpu.knobs.cf_work_factor)

    def test_miss_rate_in_extra(self, graph):
        cpu = CPUPlatform()
        _, stats = cpu.run("spmv", graph)
        assert 0.0 <= stats.extra["miss_rate"] <= 1.0


class TestGPUPlatform:
    def test_run_basics(self, graph):
        gpu = GPUPlatform()
        _, stats = gpu.run("pagerank", graph, max_iterations=5)
        assert stats.platform == "gpu"
        assert stats.seconds > 0
        assert stats.joules == pytest.approx(
            gpu.params.board_power_w * stats.seconds)

    def test_pcie_transfer_charged_once(self, graph):
        gpu = GPUPlatform()
        _, stats = gpu.run("pagerank", graph, max_iterations=5)
        transfer = stats.extra["transfer_s"]
        assert transfer > 0
        assert stats.latency.seconds_of("pcie_transfer") \
            == pytest.approx(transfer)

    def test_transfer_scales_with_graph(self):
        gpu = GPUPlatform()
        _, small = gpu.run("spmv", rmat(8, 500, seed=1))
        _, large = gpu.run("spmv", rmat(8, 5000, seed=1))
        assert large.extra["transfer_s"] > small.extra["transfer_s"]

    def test_kernel_launch_overhead_per_iteration(self, graph):
        gpu = GPUPlatform()
        _, stats = gpu.run("pagerank", graph, max_iterations=5)
        expected = (5 * gpu.knobs.kernels_per_iteration
                    * gpu.params.kernel_launch_s)
        assert stats.latency.seconds_of("kernel_launch") \
            == pytest.approx(expected)


class TestPIMPlatform:
    def test_run_basics(self, graph):
        pim = PIMPlatform()
        _, stats = pim.run("pagerank", graph, max_iterations=5)
        assert stats.platform == "pim"
        assert stats.seconds > 0
        assert stats.joules == pytest.approx(
            pim.params.power_w * stats.seconds)

    def test_barrier_per_iteration(self, graph):
        pim = PIMPlatform()
        _, stats = pim.run("pagerank", graph, max_iterations=5)
        assert stats.latency.seconds_of("barrier") \
            == pytest.approx(5 * pim.knobs.barrier_s)

    def test_frontier_imbalance_applied(self, graph):
        """SSSP (frontier-driven) pays the vault-imbalance factor;
        PageRank does not."""
        pim = PIMPlatform()
        _, sssp = pim.run("sssp", graph, source=0)
        sssp_edges = sum(sssp.extra.get("trace_edges", [0])) or None
        # Direct check: same platform, synthetic traces.
        from repro.algorithms.vertex_program import (AlgorithmResult,
                                                     IterationTrace)
        from repro.hw.stats import RunStats

        trace_plain = IterationTrace()
        trace_plain.record(10, 1000)
        trace_frontier = IterationTrace(frontiers=[])
        trace_frontier.record(10, 1000,
                              frontier=np.ones(graph.num_vertices,
                                               dtype=bool))
        plain = AlgorithmResult("pagerank", np.zeros(1), 1, True,
                                trace_plain)
        frontier = AlgorithmResult("sssp", np.zeros(1), 1, True,
                                   trace_frontier)
        s_plain = RunStats("pim", "pagerank", "x")
        s_front = RunStats("pim", "sssp", "x")
        pim._charge(plain, graph, s_plain)
        pim._charge(frontier, graph, s_front)
        assert s_front.seconds > s_plain.seconds

    def test_message_traffic_dominates_large_iterations(self, graph):
        pim = PIMPlatform()
        _, stats = pim.run("pagerank", graph, max_iterations=5)
        assert stats.latency.seconds_of("links") > 0
