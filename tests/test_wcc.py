"""Tests for weakly connected components (extension algorithm)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.vertex_program import MappingPattern
from repro.algorithms.wcc import WCCProgram, component_sizes, wcc_reference
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import GraphFormatError
from repro.graph.generators import chain_graph, rmat
from repro.graph.graph import Graph


class TestReference:
    def test_two_components(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (3, 4)],
                                 num_vertices=5)
        result = wcc_reference(graph)
        assert result.converged
        sizes = component_sizes(result.values)
        assert sizes == {0: 3, 3: 2}

    def test_chain_single_component(self, path_graph):
        result = wcc_reference(path_graph)
        assert np.all(result.values == 0)

    def test_matches_networkx(self, small_graph):
        result = wcc_reference(small_graph)
        g = nx.DiGraph()
        g.add_nodes_from(range(small_graph.num_vertices))
        g.add_edges_from(
            (int(s), int(d)) for s, d, _ in small_graph.adjacency)
        nx_components = list(nx.weakly_connected_components(g))
        ours = component_sizes(result.values)
        assert sorted(ours.values()) == sorted(
            len(c) for c in nx_components)

    def test_directed_propagation_differs(self):
        # 1 -> 0: forward-only propagation cannot relabel 0's source.
        graph = Graph.from_edges([(1, 0)], num_vertices=2)
        sym = wcc_reference(graph, symmetrize=True)
        directed = wcc_reference(graph, symmetrize=False)
        assert np.array_equal(sym.values, [0, 0])
        assert np.array_equal(directed.values, [0, 1])

    def test_trace_has_frontiers(self, small_graph):
        result = wcc_reference(small_graph)
        assert result.trace.frontiers is not None
        assert result.trace.frontiers[0].all()

    def test_iteration_cap(self, path_graph):
        result = wcc_reference(path_graph, max_iterations=1)
        assert result.iterations == 1
        assert not result.converged


class TestProgram:
    def test_descriptor(self):
        program = WCCProgram()
        assert program.pattern is MappingPattern.PARALLEL_ADD_OP
        assert program.reduce_op == "min"
        assert program.needs_active_list

    def test_initial_labels_are_ids(self, small_graph):
        labels = WCCProgram().initial_properties(small_graph)
        assert np.array_equal(labels,
                              np.arange(small_graph.num_vertices))

    def test_coefficients_zero(self, small_graph):
        coeffs = WCCProgram().crossbar_coefficient(small_graph)
        assert np.all(coeffs == 0.0)

    def test_too_many_vertices_rejected(self):
        big = Graph.from_edges([(0, 1)], num_vertices=1 << 16)
        with pytest.raises(GraphFormatError):
            WCCProgram().initial_properties(big)


class TestOnAccelerator:
    def test_functional_wcc_matches_reference(self):
        graph = rmat(5, 60, seed=13).symmetrized()
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                           num_ges=2, max_iterations=100)
        result, stats = GraphR(cfg).run("wcc", graph, mode="functional")
        reference = wcc_reference(graph, symmetrize=False)
        assert np.array_equal(result.values, reference.values)
        assert stats.seconds > 0

    def test_analytic_wcc(self):
        graph = rmat(6, 150, seed=2)
        cfg = GraphRConfig(mode="analytic")
        result, stats = GraphR(cfg).run("wcc", graph)
        assert stats.extra["mode"] == "analytic"
        assert component_sizes(result.values)


class TestSymmetrized:
    def test_every_edge_mirrored(self, small_graph):
        sym = small_graph.symmetrized()
        dense = sym.adjacency.to_dense()
        assert np.array_equal(dense > 0, (dense > 0).T)

    def test_weights_min_merged(self):
        graph = Graph.from_edges([(0, 1, 5.0), (1, 0, 2.0)],
                                 num_vertices=2, weighted=True)
        sym = graph.symmetrized()
        assert sym.adjacency.to_dense()[0, 1] == 2.0
        assert sym.adjacency.to_dense()[1, 0] == 2.0
