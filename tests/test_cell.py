"""Unit tests for the ReRAM cell model."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.hw.params import ReRAMParams
from repro.reram.cell import ReRAMCell


class TestLevels:
    def test_default_4bit(self):
        cell = ReRAMCell()
        assert cell.num_levels == 16
        assert cell.level == 0

    def test_program_and_energy(self):
        cell = ReRAMCell()
        energy = cell.program(7)
        assert cell.level == 7
        assert energy == pytest.approx(3.91e-9)

    def test_program_out_of_range(self):
        cell = ReRAMCell()
        with pytest.raises(DeviceError):
            cell.program(16)
        with pytest.raises(DeviceError):
            cell.program(-1)

    def test_construct_out_of_range(self):
        with pytest.raises(DeviceError):
            ReRAMCell(level=99)


class TestConductance:
    def test_endpoints(self):
        cell = ReRAMCell()
        assert cell.conductance == pytest.approx(1 / 25e6)
        cell.program(cell.num_levels - 1)
        assert cell.conductance == pytest.approx(1 / 50e3)

    def test_monotonic_in_level(self):
        cell = ReRAMCell()
        conductances = []
        for level in range(cell.num_levels):
            cell.program(level)
            conductances.append(cell.conductance)
        assert conductances == sorted(conductances)

    def test_read_current_ohms_law(self):
        cell = ReRAMCell()
        cell.program(15)
        assert cell.read_current() == pytest.approx(0.7 / 50e3)
        assert cell.read_current(0.35) == pytest.approx(0.35 / 50e3)

    def test_negative_voltage_rejected(self):
        with pytest.raises(DeviceError):
            ReRAMCell().read_current(-0.1)

    def test_custom_cell_bits(self):
        params = ReRAMParams(cell_bits=2)
        cell = ReRAMCell(params=params)
        assert cell.num_levels == 4

    def test_repr(self):
        assert "ReRAMCell" in repr(ReRAMCell())
