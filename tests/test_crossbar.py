"""Unit + property tests for the ReRAM crossbar MVM model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.reram.crossbar import Crossbar


class TestProgram:
    def test_program_tile(self, rng):
        xb = Crossbar(4, 4)
        tile = rng.integers(0, 16, (4, 4))
        counts = xb.program(tile)
        assert np.array_equal(xb.levels, tile)
        assert counts.cells_written == 16
        assert counts.row_writes == 4

    def test_program_wrong_shape(self):
        with pytest.raises(DeviceError):
            Crossbar(4, 4).program(np.zeros((3, 4), dtype=int))

    def test_program_level_out_of_range(self):
        with pytest.raises(DeviceError):
            Crossbar(4, 4).program(np.full((4, 4), 16))

    def test_program_sparse(self):
        xb = Crossbar(4, 4)
        counts = xb.program_sparse(np.array([0, 2]), np.array([1, 3]),
                                   np.array([5, 9]))
        assert xb.levels[0, 1] == 5
        assert xb.levels[2, 3] == 9
        assert xb.levels.sum() == 14
        assert counts.cells_written == 2
        assert counts.row_writes == 2

    def test_program_sparse_clears_previous(self):
        xb = Crossbar(2, 2)
        xb.program(np.full((2, 2), 3))
        xb.program_sparse(np.array([0]), np.array([0]), np.array([1]))
        assert xb.levels.sum() == 1

    def test_program_sparse_duplicate_rows_counted_once(self):
        xb = Crossbar(4, 4)
        counts = xb.program_sparse(np.array([1, 1]), np.array([0, 2]),
                                   np.array([3, 4]))
        assert counts.row_writes == 1

    def test_program_sparse_bad_inputs(self):
        xb = Crossbar(4, 4)
        with pytest.raises(DeviceError):
            xb.program_sparse(np.array([9]), np.array([0]), np.array([1]))
        with pytest.raises(DeviceError):
            xb.program_sparse(np.array([0]), np.array([9]), np.array([1]))
        with pytest.raises(DeviceError):
            xb.program_sparse(np.array([0]), np.array([0]), np.array([99]))
        with pytest.raises(DeviceError):
            xb.program_sparse(np.array([0, 1]), np.array([0]),
                              np.array([1]))

    def test_invalid_dimensions(self):
        with pytest.raises(DeviceError):
            Crossbar(0, 4)

    def test_negative_noise(self):
        with pytest.raises(DeviceError):
            Crossbar(4, 4, noise_sigma=-1.0)


class TestMVM:
    def test_figure3_dot_product(self):
        """b_j = sum_i a_i * w_ij — the Figure 3c semantics."""
        xb = Crossbar(3, 3)
        w = np.array([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        xb.program(w)
        a = np.array([1.0, 0.0, 2.0])
        out, counts = xb.mvm(a)
        assert np.array_equal(out, a @ w)
        assert counts.mvm_ops == 1
        assert counts.cells_activated == 2 * 3  # two active wordlines

    def test_mvm_wrong_length(self):
        with pytest.raises(DeviceError):
            Crossbar(4, 4).mvm(np.ones(3))

    def test_mvm_negative_input_rejected(self):
        with pytest.raises(DeviceError):
            Crossbar(4, 4).mvm(np.array([1.0, -1.0, 0.0, 0.0]))

    def test_select_row(self):
        xb = Crossbar(4, 4)
        tile = np.arange(16).reshape(4, 4) % 16
        xb.program(tile)
        out, _ = xb.select_row(2)
        assert np.array_equal(out, tile[2])

    def test_select_row_out_of_range(self):
        with pytest.raises(DeviceError):
            Crossbar(4, 4).select_row(4)

    def test_noise_perturbs_but_preserves_scale(self):
        xb = Crossbar(4, 4, noise_sigma=0.1, seed=3)
        xb.program(np.full((4, 4), 8))
        out, _ = xb.mvm(np.ones(4))
        exact = np.full(4, 32.0)
        assert not np.array_equal(out, exact)
        assert np.allclose(out, exact, atol=2.0)

    def test_noise_never_negative(self):
        xb = Crossbar(4, 4, noise_sigma=5.0, seed=1)
        xb.program(np.zeros((4, 4), dtype=int))
        out, _ = xb.mvm(np.ones(4))
        assert np.all(out >= 0)

    def test_counts_merge(self):
        xb = Crossbar(2, 2)
        total = xb.program(np.zeros((2, 2), dtype=int))
        _, more = xb.mvm(np.ones(2))
        total.merge(more)
        assert total.mvm_ops == 1
        assert total.cells_written == 4

    def test_repr(self):
        assert "8x8" in repr(Crossbar(8, 8))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10_000))
def test_property_mvm_linearity(rows, cols, seed):
    """MVM is linear: xb(a + b) == xb(a) + xb(b)."""
    rng = np.random.default_rng(seed)
    xb = Crossbar(rows, cols)
    xb.program(rng.integers(0, 16, (rows, cols)))
    a = rng.integers(0, 4, rows).astype(float)
    b = rng.integers(0, 4, rows).astype(float)
    out_a, _ = xb.mvm(a)
    out_b, _ = xb.mvm(b)
    out_ab, _ = xb.mvm(a + b)
    assert np.allclose(out_ab, out_a + out_b)
