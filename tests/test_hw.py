"""Unit tests for technology parameters, ledgers and run stats."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hw.energy import EnergyLedger
from repro.hw.params import (
    ADCParams,
    CPUParams,
    PIMParams,
    ReRAMParams,
    TechnologyParams,
    default_technology,
)
from repro.hw.stats import RunStats
from repro.hw.timing import LatencyModel


class TestParams:
    def test_paper_constants(self):
        """The Section 5.2 device numbers must be the defaults."""
        reram = ReRAMParams()
        assert reram.read_latency_s == pytest.approx(29.31e-9)
        assert reram.write_latency_s == pytest.approx(50.88e-9)
        assert reram.read_energy_j == pytest.approx(1.08e-12)
        assert reram.write_energy_j == pytest.approx(3.91e-9)
        assert reram.cell_bits == 4
        assert reram.ge_cycle_s == pytest.approx(64e-9)
        assert reram.hrs_ohm == pytest.approx(25e6)
        assert reram.lrs_ohm == pytest.approx(50e3)

    def test_adc_energy_per_sample(self):
        adc = ADCParams(sample_rate_sps=1e9, power_w=16e-3)
        assert adc.energy_per_sample_j == pytest.approx(16e-12)

    def test_cpu_table4(self):
        cpu = CPUParams()
        assert cpu.total_cores == 16
        assert cpu.frequency_hz == pytest.approx(2.4e9)
        assert cpu.l3_bytes == 20 * 1024 * 1024
        assert cpu.total_power_w == pytest.approx(2 * 85 + 25)

    def test_pim_tesseract_geometry(self):
        pim = PIMParams()
        assert pim.total_cores == 512
        assert pim.cubes == 16

    def test_invalid_cell_bits(self):
        with pytest.raises(ConfigError):
            ReRAMParams(cell_bits=0)
        with pytest.raises(ConfigError):
            ReRAMParams(cell_bits=9)

    def test_invalid_latency(self):
        with pytest.raises(ConfigError):
            ReRAMParams(read_latency_s=-1.0)

    def test_with_reram_override(self):
        tech = default_technology().with_reram(cell_bits=2)
        assert tech.reram.cell_bits == 2
        assert default_technology().reram.cell_bits == 4

    def test_bundle_is_frozen(self):
        tech = TechnologyParams()
        with pytest.raises(AttributeError):
            tech.reram = ReRAMParams()


class TestEnergyLedger:
    def test_charge_and_total(self):
        ledger = EnergyLedger()
        ledger.charge("adc", count=128, energy_per_event_j=16e-12)
        assert ledger.total_j == pytest.approx(2.048e-9)
        assert ledger.count_of("adc") == 128
        assert ledger.energy_of("adc") == pytest.approx(2.048e-9)

    def test_unknown_component_zero(self):
        ledger = EnergyLedger()
        assert ledger.energy_of("nothing") == 0.0
        assert ledger.count_of("nothing") == 0

    def test_charge_joules(self):
        ledger = EnergyLedger()
        ledger.charge_joules("static", 0.5)
        assert ledger.total_j == 0.5

    def test_components_sorted_by_energy(self):
        ledger = EnergyLedger()
        ledger.charge("small", 1, 1e-12)
        ledger.charge("big", 1, 1e-9)
        assert ledger.components() == ("big", "small")

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.charge("x", 1, 1.0)
        b.charge("x", 2, 1.0)
        b.charge("y", 1, 3.0)
        a.merge(b)
        assert a.energy_of("x") == 3.0
        assert a.count_of("x") == 3
        assert a.energy_of("y") == 3.0

    def test_negative_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ConfigError):
            ledger.charge("x", count=-1)
        with pytest.raises(ConfigError):
            ledger.charge("x", count=1, energy_per_event_j=-1.0)
        with pytest.raises(ConfigError):
            ledger.charge_joules("x", -1.0)

    def test_iter_and_repr(self):
        ledger = EnergyLedger()
        ledger.charge("x", 1, 2.0)
        assert list(ledger) == [("x", 2.0)]
        assert "EnergyLedger" in repr(ledger)

    def test_breakdown_is_copy(self):
        ledger = EnergyLedger()
        ledger.charge("x", 1, 2.0)
        ledger.breakdown()["x"] = 99.0
        assert ledger.energy_of("x") == 2.0


class TestLatencyModel:
    def test_add_and_total(self):
        lat = LatencyModel()
        lat.add("compute", 1.5)
        lat.add("compute", 0.5)
        lat.add("io", 1.0)
        assert lat.total_s == 3.0
        assert lat.seconds_of("compute") == 2.0
        assert lat.phases()[0] == "compute"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel().add("x", -1.0)

    def test_merge(self):
        a, b = LatencyModel(), LatencyModel()
        a.add("x", 1.0)
        b.add("x", 2.0)
        a.merge(b)
        assert a.seconds_of("x") == 3.0

    def test_breakdown_copy(self):
        lat = LatencyModel()
        lat.add("x", 1.0)
        lat.breakdown()["x"] = 9.0
        assert lat.seconds_of("x") == 1.0


class TestRunStats:
    def test_speedup_and_energy_saving(self):
        fast = RunStats("graphr", "pagerank", "WV", seconds=1.0)
        slow = RunStats("cpu", "pagerank", "WV", seconds=10.0)
        fast.energy.charge_joules("x", 1.0)
        slow.energy.charge_joules("x", 30.0)
        assert fast.speedup_over(slow) == 10.0
        assert fast.energy_saving_over(slow) == 30.0

    def test_zero_time_rejected(self):
        zero = RunStats("graphr", "pagerank", "WV", seconds=0.0)
        other = RunStats("cpu", "pagerank", "WV", seconds=1.0)
        with pytest.raises(ZeroDivisionError):
            zero.speedup_over(other)

    def test_summary(self):
        stats = RunStats("cpu", "bfs", "AZ", seconds=0.5, iterations=7)
        text = stats.summary()
        assert "cpu" in text and "bfs" in text and "AZ" in text
