"""Tests for the BatchRunner facade and its harness integration."""

from __future__ import annotations

import pytest

from repro.core.config import GraphRConfig
from repro.errors import ConfigError, JobError
from repro.experiments.harness import ExperimentRunner
from repro.runtime import scheduler as scheduler_module
from repro.runtime.job import Job
from repro.runtime.runner import BatchRunner


def counting_execute_job(counter):
    """Wrap the real per-job executor with an invocation counter."""
    real = scheduler_module.execute_job

    def wrapper(job, cache_dir=None, **kwargs):
        counter.append(job)
        return real(job, cache_dir=cache_dir, **kwargs)

    return wrapper


class TestBatchRunner:
    def test_run_convenience(self):
        stats = BatchRunner().run("spmv", "WV")
        assert stats.platform == "graphr"
        assert stats.seconds > 0

    def test_run_raises_on_failure(self):
        with pytest.raises(JobError):
            BatchRunner().run("sssp", "WV", source=10 ** 9)

    def test_duplicate_jobs_execute_once(self, monkeypatch):
        calls = []
        monkeypatch.setattr(scheduler_module, "execute_job",
                            counting_execute_job(calls))
        job = Job("spmv", "WV")
        results = BatchRunner().run_jobs([job, job, Job("spmv", "wv")])
        assert len(calls) == 1
        assert all(r.ok for r in results)
        assert all(r.stats.to_dict() == results[0].stats.to_dict()
                   for r in results)

    def test_cache_hit_short_circuits_the_simulator(self, tmp_path,
                                                    monkeypatch):
        calls = []
        monkeypatch.setattr(scheduler_module, "execute_job",
                            counting_execute_job(calls))
        first = BatchRunner(cache_dir=tmp_path)
        warm = first.run("pagerank", "WV", max_iterations=3)
        assert len(calls) == 1

        second = BatchRunner(cache_dir=tmp_path)
        cached = second.run("pagerank", "WV", max_iterations=3)
        assert len(calls) == 1          # simulator never invoked again
        assert second.cache_stats()["hits"] == 1
        assert cached.to_dict() == warm.to_dict()

    def test_config_change_invalidates(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path)
        runner.run("spmv", "WV")
        runner.run("spmv", "WV",
                   config=GraphRConfig(mode="analytic", num_ges=8))
        assert runner.cache_stats()["misses"] == 2
        assert runner.cache_stats()["stores"] == 2

    def test_failed_jobs_never_cached(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path)
        job = Job("sssp", "WV", run_kwargs={"source": 10 ** 9})
        assert not runner.run_jobs([job])[0].ok
        assert runner.cache_stats()["stores"] == 0
        assert len(runner.cache) == 0

    def test_functional_jobs_cache_bit_identical(self, tmp_path):
        """Functional-mode runs (batched engine, seeded noise) must
        round-trip the cache bit-exactly, and the batch size must not
        leak into the results."""
        config = GraphRConfig(mode="functional", noise_sigma=0.2,
                              max_iterations=5)
        job = Job("pagerank", "WV", config=config,
                  run_kwargs={"max_iterations": 5})
        first = BatchRunner(cache_dir=tmp_path)
        fresh = first.run_jobs([job])[0]
        assert fresh.ok and not fresh.from_cache
        assert fresh.stats.extra["mode"] == "functional"

        second = BatchRunner(cache_dir=tmp_path)
        cached = second.run_jobs([job])[0]
        assert cached.from_cache
        assert cached.stats.to_dict() == fresh.stats.to_dict()

        # A different batch size re-simulates (config key changes) but
        # must land on bit-identical stats.
        per_tile = BatchRunner(cache_dir=tmp_path).run_jobs([Job(
            "pagerank", "WV",
            config=config.with_overrides(functional_batch_size=0),
            run_kwargs={"max_iterations": 5})])[0]
        assert not per_tile.from_cache
        assert per_tile.stats.identity_dict() == \
            fresh.stats.identity_dict()

    def test_parallel_functional_matches_serial(self):
        config = GraphRConfig(mode="functional", max_iterations=3)
        jobs = [Job("pagerank", "WV", config=config,
                    run_kwargs={"max_iterations": 3}),
                Job("bfs", "WV", config=config,
                    run_kwargs={"source": 0})]
        serial = BatchRunner().run_jobs(jobs)
        parallel = BatchRunner(workers=2).run_jobs(jobs)
        for s, p in zip(serial, parallel):
            # identity_dict: wall-clock trace telemetry differs per
            # execution; every simulated value must not.
            assert p.stats.identity_dict() == s.stats.identity_dict()


class TestHarnessIntegration:
    CELLS = [("spmv", "WV"), ("bfs", "WV"), ("pagerank", "WV")]

    def test_prefetch_batches_the_grid(self, monkeypatch):
        calls = []
        monkeypatch.setattr(scheduler_module, "execute_job",
                            counting_execute_job(calls))
        runner = ExperimentRunner()
        rows = runner.compare_cells("cpu", self.CELLS)
        assert len(rows) == 3
        assert len(calls) == 6          # 3 graphr + 3 cpu runs
        runner.compare_cells("cpu", self.CELLS)
        assert len(calls) == 6          # memoised within the runner

    def test_unknown_platform_still_config_error(self):
        with pytest.raises(ConfigError):
            ExperimentRunner().stats("tpu", "pagerank", "WV")

    def test_harness_config_reaches_external_batch_runner(self):
        """The harness config must win even when the BatchRunner (with
        its own default config) is supplied by the caller."""
        config = GraphRConfig(mode="analytic", num_ges=4)
        via_runner = ExperimentRunner(
            config=config, batch_runner=BatchRunner()).stats(
                "graphr", "spmv", "WV")
        direct = ExperimentRunner(config=config).stats(
            "graphr", "spmv", "WV")
        assert via_runner.identity_dict() == direct.identity_dict()

    def test_second_figure_run_hits_cache_only(self, tmp_path,
                                               monkeypatch):
        """The fig17 acceptance path in miniature: re-running a figure
        grid with the same --cache-dir performs zero simulator
        invocations the second time."""
        calls = []
        monkeypatch.setattr(scheduler_module, "execute_job",
                            counting_execute_job(calls))
        first = ExperimentRunner(cache_dir=tmp_path)
        warm = first.compare_cells("cpu", self.CELLS)
        executed = len(calls)
        assert executed == 6

        second = ExperimentRunner(cache_dir=tmp_path)
        rows = second.compare_cells("cpu", self.CELLS)
        assert len(calls) == executed   # zero new simulator runs
        cache = second.runner.cache_stats()
        assert cache["hits"] == 6
        assert cache["misses"] == 0
        for fresh, cached in zip(warm, rows):
            assert cached.graphr.to_dict() == fresh.graphr.to_dict()
            assert cached.baseline.to_dict() == fresh.baseline.to_dict()
            assert cached.speedup == fresh.speedup
            assert cached.energy_saving == fresh.energy_saving

    def test_parallel_harness_matches_serial(self):
        serial = ExperimentRunner().compare_cells("cpu", self.CELLS)
        parallel = ExperimentRunner(workers=3).compare_cells(
            "cpu", self.CELLS)
        for s, p in zip(serial, parallel):
            assert p.graphr.identity_dict() == s.graphr.identity_dict()
            assert p.baseline.identity_dict() == \
                s.baseline.identity_dict()


class TestSweepsThroughRuntime:
    def test_dataset_code_sweep_uses_cache(self, tmp_path):
        from repro.experiments.sweeps import geometry_sweep

        runner = BatchRunner(cache_dir=tmp_path)
        points = geometry_sweep("WV", crossbar_sizes=(4, 8),
                                ge_counts=(16,),
                                run_kwargs={"max_iterations": 2},
                                runner=runner)
        again = geometry_sweep("WV", crossbar_sizes=(4, 8),
                               ge_counts=(16,),
                               run_kwargs={"max_iterations": 2},
                               runner=runner)
        assert points == again
        assert runner.cache_stats()["hits"] == 2
