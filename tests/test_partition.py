"""Unit tests for block/subgraph partitioning (Sections 3.3-3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.coo import COOMatrix
from repro.graph.partition import (
    BlockPartition,
    DualSlidingWindows,
    SubgraphGrid,
    ceil_div,
    pad_to_multiple,
)


class TestHelpers:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (8, 3, 3)])
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_ceil_div_bad_divisor(self):
        with pytest.raises(PartitionError):
            ceil_div(4, 0)

    @pytest.mark.parametrize("n,m,expected", [
        (0, 4, 0), (1, 4, 4), (4, 4, 4), (9, 4, 12)])
    def test_pad_to_multiple(self, n, m, expected):
        assert pad_to_multiple(n, m) == expected


class TestBlockPartition:
    def test_figure12_geometry(self):
        # V=64, B=32 -> 2x2 block grid.
        part = BlockPartition(64, 32)
        assert part.blocks_per_side == 2
        assert part.num_blocks == 4
        assert part.padded_vertices == 64

    def test_padding(self):
        part = BlockPartition(65, 32)
        assert part.padded_vertices == 96
        assert part.blocks_per_side == 3

    def test_column_major_order(self):
        part = BlockPartition(64, 32)
        # Paper: B(0,0) -> B(1,0) -> B(0,1) -> B(1,1).
        order = [part.block_order(bi, bj)
                 for bi, bj in [(0, 0), (1, 0), (0, 1), (1, 1)]]
        assert order == [0, 1, 2, 3]

    def test_iter_blocks_matches_order(self):
        part = BlockPartition(64, 32)
        visited = list(part.iter_blocks())
        assert [part.block_order(*b) for b in visited] == [0, 1, 2, 3]

    def test_block_coords(self):
        part = BlockPartition(64, 32)
        assert part.block_coords(5, 40) == (0, 1)
        assert part.block_of_entry(40, 5) == 1

    def test_entry_out_of_range(self):
        part = BlockPartition(64, 32)
        with pytest.raises(PartitionError):
            part.block_coords(64, 0)

    def test_block_order_out_of_range(self):
        with pytest.raises(PartitionError):
            BlockPartition(64, 32).block_order(2, 0)

    def test_block_submatrix(self, tiny_graph):
        part = BlockPartition(8, 4)
        block = part.block_submatrix(tiny_graph.adjacency, 0, 0)
        assert block.shape == (4, 4)
        dense = tiny_graph.adjacency.to_dense()[:4, :4]
        assert np.array_equal(block.to_dense(), dense)

    def test_block_submatrix_shape_mismatch(self, tiny_graph):
        part = BlockPartition(16, 4)
        with pytest.raises(PartitionError):
            part.block_submatrix(tiny_graph.adjacency, 0, 0)

    def test_invalid_params(self):
        with pytest.raises(PartitionError):
            BlockPartition(0, 4)
        with pytest.raises(PartitionError):
            BlockPartition(8, 0)


class TestSubgraphGrid:
    @pytest.fixture
    def grid(self):
        # Figure 12: C=4, N=2, G=2 -> tiles of 4 x 16 over a 32-block.
        return SubgraphGrid(block_size=32, crossbar_size=4,
                            crossbars_per_ge=2, num_ges=2)

    def test_tile_shape(self, grid):
        assert grid.tile_rows == 4
        assert grid.tile_cols == 16

    def test_grid_shape(self, grid):
        assert grid.grid_shape == (8, 2)
        assert grid.subgraphs_per_block == 16

    def test_column_major_subgraph_order(self, grid):
        visited = list(grid.iter_subgraphs())
        assert visited[0] == (0, 0)
        assert visited[1] == (1, 0)
        assert visited[8] == (0, 1)
        assert [grid.subgraph_order(*t) for t in visited] == list(range(16))

    def test_coords(self, grid):
        assert grid.subgraph_coords(5, 17) == (1, 1)

    def test_coords_out_of_range(self, grid):
        with pytest.raises(PartitionError):
            grid.subgraph_coords(32, 0)

    def test_tile_bounds(self, grid):
        assert grid.tile_bounds(1, 1) == (4, 8, 16, 32)

    def test_tile_bounds_out_of_range(self, grid):
        with pytest.raises(PartitionError):
            grid.tile_bounds(8, 0)

    def test_nonempty_count(self, grid):
        block = COOMatrix((32, 32), [0, 1, 5, 20], [0, 1, 20, 31],
                          [1, 1, 1, 1])
        # Tiles: (0,0) holds (0,0) & (1,1); (1,1) holds (5,20);
        # (5,1) holds (20,31).
        assert grid.nonempty_subgraph_count(block) == 3

    def test_nonempty_empty_block(self, grid):
        assert grid.nonempty_subgraph_count(COOMatrix.empty((32, 32))) == 0

    def test_occupancy_histogram(self, grid):
        block = COOMatrix((32, 32), [0, 1, 5], [0, 1, 20], [1, 1, 1])
        hist = grid.occupancy_histogram(block)
        assert np.array_equal(hist, [2, 1])

    def test_occupancy_empty(self, grid):
        assert grid.occupancy_histogram(COOMatrix.empty((32, 32))).size == 0

    def test_invalid_params(self):
        with pytest.raises(PartitionError):
            SubgraphGrid(32, 0, 2, 2)


class TestDualSlidingWindows:
    def test_chunking(self):
        win = DualSlidingWindows(100, 4)
        assert win.chunk_size == 25
        assert win.chunk_of(0) == 0
        assert win.chunk_of(99) == 3

    def test_chunk_out_of_range(self):
        with pytest.raises(PartitionError):
            DualSlidingWindows(100, 4).chunk_of(100)

    def test_edge_grid_counts(self, tiny_graph):
        win = DualSlidingWindows(8, 2)
        grid = win.edge_grid_counts(tiny_graph.adjacency)
        assert grid.shape == (2, 2)
        assert grid.sum() == tiny_graph.num_edges

    def test_grid_shape_mismatch(self, tiny_graph):
        win = DualSlidingWindows(16, 2)
        with pytest.raises(PartitionError):
            win.edge_grid_counts(tiny_graph.adjacency)

    def test_more_chunks_than_vertices(self):
        with pytest.raises(PartitionError):
            DualSlidingWindows(3, 5)
