"""Tests for span trees (repro.obs.tracing)."""

from __future__ import annotations

from repro.obs import tracing
from repro.obs.tracing import Span, current_span, span, trace


class TestSpanTree:
    def test_trace_builds_nested_tree(self):
        with trace("job", correlation_id="abc123") as root:
            with span("prepare"):
                pass
            with span("iteration", index=0):
                with span("sweep"):
                    pass
                with span("merge"):
                    pass
        assert root.name == "job"
        assert root.correlation_id == "abc123"
        assert [c.name for c in root.children] == ["prepare",
                                                   "iteration"]
        iteration = root.children[1]
        assert iteration.meta == {"index": 0}
        assert [c.name for c in iteration.children] == ["sweep", "merge"]
        # Every span got timed.
        for node in root.walk():
            assert node.duration_s is not None
            assert node.duration_s >= 0.0

    def test_span_is_noop_outside_a_trace(self):
        with span("orphan") as node:
            assert node is None
        assert current_span() is None

    def test_disabled_tracing_yields_none(self):
        tracing.set_enabled(False)
        try:
            with trace("job") as root:
                assert root is None
                with span("child") as node:
                    assert node is None
        finally:
            tracing.set_enabled(True)

    def test_current_span_tracks_nesting(self):
        assert current_span() is None
        with trace("job") as root:
            assert current_span() is root
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is root
        assert current_span() is None

    def test_annotate_and_add_child(self):
        root = Span("job").start()
        root.annotate(algorithm="pagerank")
        root.add_child("queue-wait", 0.25, source="store")
        root.finish()
        assert root.meta == {"algorithm": "pagerank"}
        child = root.children[0]
        assert child.name == "queue-wait"
        assert child.duration_s == 0.25
        assert child.meta == {"source": "store"}

    def test_find(self):
        with trace("job") as root:
            for index in range(3):
                with span("iteration", index=index):
                    with span("sweep"):
                        pass
        assert len(root.find("sweep")) == 3
        assert root.find("nope") == []


class TestSerialization:
    def test_round_trip(self):
        with trace("job", correlation_id="c0ffee") as root:
            with span("prepare", dataset="WV"):
                pass
        payload = root.to_dict()
        rebuilt = Span.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_to_dict_omits_unset_fields(self):
        node = Span("bare")
        assert node.to_dict() == {"name": "bare"}

    def test_payload_is_json_safe(self):
        import json

        with trace("job") as root:
            with span("sweep", tiles=4):
                pass
        assert json.loads(json.dumps(root.to_dict()))["name"] == "job"
