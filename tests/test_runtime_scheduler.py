"""Tests for the batch scheduler and its process pool."""

from __future__ import annotations

import pytest

from repro.errors import JobError
from repro.runtime.job import Job
from repro.runtime.scheduler import JobResult, Scheduler

JOBS = [
    Job("spmv", "WV"),
    Job("bfs", "WV", run_kwargs={"source": 0}),
    Job("pagerank", "WV", run_kwargs={"max_iterations": 3}),
    Job("spmv", "WV", platform="cpu"),
]


class TestSerial:
    def test_order_and_success(self):
        results = Scheduler(workers=1).run(JOBS)
        assert [r.job for r in results] == JOBS
        assert all(r.ok for r in results)
        assert results[3].stats.platform == "cpu"

    def test_empty_batch(self):
        assert Scheduler().run([]) == []

    def test_bad_worker_count(self):
        with pytest.raises(JobError):
            Scheduler(workers=0)


class TestErrorCapture:
    def test_one_failure_does_not_kill_the_batch(self):
        jobs = [Job("spmv", "WV"),
                Job("sssp", "WV", run_kwargs={"source": 10 ** 9}),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=1).run(jobs)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error  # carries the worker traceback
        with pytest.raises(JobError):
            results[1].unwrap()

    def test_pool_survives_worker_exception(self):
        jobs = [Job("spmv", "WV"),
                Job("sssp", "WV", run_kwargs={"source": 10 ** 9}),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=3).run(jobs)
        assert [r.ok for r in results] == [True, False, True]


class TestParallel:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = Scheduler(workers=1).run(JOBS)
        parallel = Scheduler(workers=4).run(JOBS)
        for s, p in zip(serial, parallel):
            assert s.job == p.job
            assert p.stats.to_dict() == s.stats.to_dict()


class TestJobResult:
    def test_unwrap_success(self):
        result = Scheduler().run([Job("spmv", "WV")])[0]
        assert result.unwrap().seconds > 0

    def test_unwrap_without_stats(self):
        empty = JobResult(job=Job("spmv", "WV"))
        assert not empty.ok
        with pytest.raises(JobError):
            empty.unwrap()
