"""Tests for the batch scheduler and its warm worker pool."""

from __future__ import annotations

import os
import sys

import pytest

from repro.errors import JobError
from repro.runtime import scheduler as scheduler_module
from repro.runtime.job import Job
from repro.runtime.scheduler import JobResult, Scheduler

JOBS = [
    Job("spmv", "WV"),
    Job("bfs", "WV", run_kwargs={"source": 0}),
    Job("pagerank", "WV", run_kwargs={"max_iterations": 3}),
    Job("spmv", "WV", platform="cpu"),
]


class TestSerial:
    def test_order_and_success(self):
        results = Scheduler(workers=1).run(JOBS)
        assert [r.job for r in results] == JOBS
        assert all(r.ok for r in results)
        assert results[3].stats.platform == "cpu"

    def test_empty_batch(self):
        assert Scheduler().run([]) == []

    def test_bad_worker_count(self):
        with pytest.raises(JobError):
            Scheduler(workers=0)


class TestErrorCapture:
    def test_one_failure_does_not_kill_the_batch(self):
        jobs = [Job("spmv", "WV"),
                Job("sssp", "WV", run_kwargs={"source": 10 ** 9}),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=1).run(jobs)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error  # carries the worker traceback
        with pytest.raises(JobError):
            results[1].unwrap()

    def test_pool_survives_worker_exception(self):
        jobs = [Job("spmv", "WV"),
                Job("sssp", "WV", run_kwargs={"source": 10 ** 9}),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=3).run(jobs)
        assert [r.ok for r in results] == [True, False, True]


class TestParallel:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = Scheduler(workers=1).run(JOBS)
        parallel = Scheduler(workers=4).run(JOBS)
        for s, p in zip(serial, parallel):
            assert s.job == p.job
            # identity_dict: everything simulated, minus the wall-clock
            # trace telemetry two executions can never share.
            assert p.stats.identity_dict() == s.stats.identity_dict()


def crashing_execute_payload(marker_algorithm, crash_flag_path=None):
    """An execute_payload that kills its worker process on one
    algorithm.  With ``crash_flag_path``, it crashes only until the
    flag file exists (crash once, then succeed)."""
    real = scheduler_module.execute_payload

    def wrapper(payload, cache_dir=None, **kwargs):
        if payload["algorithm"] == marker_algorithm:
            if crash_flag_path is None or not os.path.exists(
                    crash_flag_path):
                if crash_flag_path is not None:
                    with open(crash_flag_path, "w") as flag:
                        flag.write("crashed once")
                os._exit(42)  # simulate segfault/OOM kill
        return real(payload, cache_dir=cache_dir, **kwargs)

    return wrapper


@pytest.mark.skipif(sys.platform != "linux",
                    reason="crash injection relies on fork inheriting "
                           "the monkeypatched module")
class TestCrashRecovery:
    """Worker crashes are retryable and bounded; deterministic
    JobErrors fail fast — and JobResult tells them apart."""

    def test_crash_is_retried_then_reported(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "execute_payload",
                            crashing_execute_payload("spmv"))
        jobs = [Job("spmv", "WV"),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=2, max_crash_retries=2).run(jobs)
        crashed, healthy = results
        assert not crashed.ok
        assert crashed.crashed
        assert crashed.attempts == 3        # 1 try + 2 retries
        assert "crashed" in crashed.error
        assert healthy.ok
        assert not healthy.crashed
        assert healthy.attempts == 1

    def test_crash_once_then_succeed(self, monkeypatch, tmp_path):
        flag = tmp_path / "crashed-once"
        monkeypatch.setattr(
            scheduler_module, "execute_payload",
            crashing_execute_payload("spmv", str(flag)))
        jobs = [Job("spmv", "WV"),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=2).run(jobs)
        assert all(result.ok for result in results)
        assert results[0].attempts == 2     # crashed, then recovered
        assert results[1].attempts == 1
        # The recovered result is the real one.
        clean = Scheduler(workers=1).run([jobs[0]])[0]
        assert results[0].stats.identity_dict() == \
            clean.stats.identity_dict()

    def test_deterministic_failure_is_never_retried(self):
        jobs = [Job("sssp", "WV", run_kwargs={"source": 10 ** 9}),
                Job("spmv", "WV")]
        results = Scheduler(workers=2, max_crash_retries=2).run(jobs)
        assert not results[0].ok
        assert not results[0].crashed       # a JobError, not a crash
        assert results[0].attempts == 1
        assert results[1].ok

    def test_zero_retry_budget(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "execute_payload",
                            crashing_execute_payload("spmv"))
        jobs = [Job("spmv", "WV"),
                Job("bfs", "WV", run_kwargs={"source": 0})]
        results = Scheduler(workers=2, max_crash_retries=0).run(jobs)
        assert not results[0].ok
        assert results[0].attempts == 1
        assert results[1].ok

    def test_bad_retry_budget_rejected(self):
        with pytest.raises(JobError):
            Scheduler(workers=2, max_crash_retries=-1)


class TestJobResult:
    def test_unwrap_success(self):
        result = Scheduler().run([Job("spmv", "WV")])[0]
        assert result.unwrap().seconds > 0

    def test_unwrap_without_stats(self):
        empty = JobResult(job=Job("spmv", "WV"))
        assert not empty.ok
        with pytest.raises(JobError):
            empty.unwrap()
