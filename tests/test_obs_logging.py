"""Tests for structured logging and correlation ids
(repro.obs.logsetup)."""

from __future__ import annotations

import io
import json
import logging

from repro.obs.logsetup import (get_correlation_id, get_logger,
                                set_correlation_id, setup_logging)


class TestCorrelationId:
    def test_default_is_dash(self):
        assert get_correlation_id() == "-"

    def test_set_and_clear(self):
        set_correlation_id("abc123")
        try:
            assert get_correlation_id() == "abc123"
        finally:
            set_correlation_id(None)
        assert get_correlation_id() == "-"


class TestSetup:
    def _capture(self, **kwargs):
        stream = io.StringIO()
        setup_logging(stream=stream, **kwargs)
        return stream

    def teardown_method(self):
        # Return the repro logger to its silent default so the suite's
        # other tests never see stray handlers.
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_only_the_repro_subtree_is_configured(self):
        self._capture(level="INFO")
        assert not logging.getLogger().handlers \
            or all(h not in logging.getLogger("repro").handlers
                   for h in logging.getLogger().handlers)
        assert logging.getLogger("repro").propagate is False

    def test_text_lines_carry_the_correlation_id(self):
        stream = self._capture(level="INFO")
        log = get_logger("unit")
        set_correlation_id("deadbeef0123")
        try:
            log.info("hello %s", "world")
        finally:
            set_correlation_id(None)
        line = stream.getvalue()
        assert "[deadbeef0123]" in line
        assert "hello world" in line
        assert "repro.unit" in line

    def test_json_lines_parse(self):
        stream = self._capture(level="INFO", json_lines=True)
        log = get_logger("unit")
        set_correlation_id("cafe")
        try:
            log.info("structured")
        finally:
            set_correlation_id(None)
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "structured"
        assert record["correlation_id"] == "cafe"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.unit"

    def test_level_filters(self):
        stream = self._capture(level="WARNING")
        log = get_logger("unit")
        log.info("quiet")
        log.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_setup_is_idempotent(self):
        stream = self._capture(level="INFO")
        self._capture(level="INFO")  # reconfigure, no handler pile-up
        assert len(logging.getLogger("repro").handlers) == 1
        log = get_logger("unit")
        log.info("once")
        # The first stream was replaced, not duplicated into.
        assert stream.getvalue() == ""
