"""The three beyond-Table-2 workloads: k-core, SSWP and personalized
PageRank.

Covers the satellite contract for each: reference correctness against
an independent oracle, reference-vs-accelerator equivalence,
batched-vs-loop bit-identity, active-list convergence on disconnected
graphs, and registry/job plumbing (the deployment-parity matrix lives
in ``test_partitioned.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.kcore import (INIT, REMOVED, KCoreProgram,
                                    core_membership, kcore_reference)
from repro.algorithms.ppr import PPRProgram, ppr_reference
from repro.algorithms.registry import (get_program, get_stream_kernel,
                                       run_reference,
                                       weighted_algorithms)
from repro.algorithms.sswp import (UNBOUNDED, SSWPProgram,
                                   sswp_reference,
                                   widest_path_reference)
from repro.algorithms.vertex_program import MappingPattern
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import GraphFormatError
from repro.graph.generators import rmat
from repro.graph.graph import Graph


def functional_config(batch_size=64, **overrides):
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        mode="functional", max_iterations=80,
                        functional_batch_size=batch_size, **overrides)


@pytest.fixture(scope="module")
def weighted_graph():
    return rmat(6, 220, seed=17, weighted=True, name="w64")


@pytest.fixture
def disconnected_graph():
    """Two components plus isolated vertices: a dense-ish clique side
    and a stub path, with vertices 10..15 touching nothing."""
    edges = [(0, 1, 3.0), (1, 2, 5.0), (2, 0, 2.0), (0, 2, 7.0),
             (1, 0, 4.0), (2, 1, 6.0),
             (5, 6, 1.0), (6, 7, 2.0)]
    return Graph.from_edges(edges, num_vertices=16, weighted=True,
                            name="disco")


def peel_oracle(graph: Graph, k: int) -> np.ndarray:
    """Classic order-independent peeling on in-support."""
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    alive = np.ones(graph.num_vertices, dtype=bool)
    while True:
        support = np.zeros(graph.num_vertices)
        np.add.at(support, dst[alive[src]], 1.0)
        drop = alive & (support < k)
        if not drop.any():
            return alive
        alive &= ~drop


class TestKCoreReference:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_peeling_oracle(self, weighted_graph, k):
        result = kcore_reference(weighted_graph, k=k)
        assert result.converged
        assert np.array_equal(core_membership(result.values),
                              peel_oracle(weighted_graph, k))

    def test_core_support_is_alive_in_support(self, weighted_graph):
        result = kcore_reference(weighted_graph, k=3)
        core = core_membership(result.values)
        src = np.asarray(weighted_graph.adjacency.rows)
        dst = np.asarray(weighted_graph.adjacency.cols)
        support = np.zeros(weighted_graph.num_vertices)
        np.add.at(support, dst[core[src]], 1.0)
        assert np.array_equal(result.values[core], support[core])
        assert np.all(result.values[core] >= 3)
        assert np.all(result.values[~core] == REMOVED)

    def test_disconnected_graph_converges(self, disconnected_graph):
        result = kcore_reference(disconnected_graph, k=2)
        assert result.converged
        core = core_membership(result.values)
        # The triangle is a 2-core (every vertex has 2 in-edges); the
        # path and the isolated vertices peel away entirely.
        assert np.array_equal(np.flatnonzero(core), [0, 1, 2])
        # The trace's last frontier is empty (the confirming pass).
        assert not result.trace.frontiers[-1].any()

    def test_first_pass_fires_everyone(self, disconnected_graph):
        result = kcore_reference(disconnected_graph, k=2)
        assert result.trace.frontiers[0].all()
        assert result.trace.active_vertices[0] == \
            disconnected_graph.num_vertices

    def test_k_validation(self, disconnected_graph):
        with pytest.raises(GraphFormatError):
            kcore_reference(disconnected_graph, k=0)
        with pytest.raises(GraphFormatError):
            KCoreProgram(k=-1)

    def test_program_descriptor(self):
        program = get_program("kcore", k=4)
        assert program.pattern is MappingPattern.PARALLEL_MAC
        assert program.reduce_op == "add"
        assert program.needs_active_list
        assert program.k == 4

    def test_kernel_chunk_exact(self, weighted_graph):
        reference = kcore_reference(weighted_graph, k=3)
        kernel = get_stream_kernel("kcore")(
            weighted_graph.num_vertices,
            weighted_graph.out_degrees(), k=3)
        src = np.asarray(weighted_graph.adjacency.rows)
        dst = np.asarray(weighted_graph.adjacency.cols)
        values = np.asarray(weighted_graph.adjacency.values)
        while not kernel.finished:
            kernel.begin_pass()
            for lo in range(0, src.size, 37):
                sl = slice(lo, lo + 37)
                kernel.process_edges(src[sl], dst[sl], values[sl])
            kernel.end_pass()
        result = kernel.result()
        assert np.array_equal(result.values, reference.values)
        assert result.iterations == reference.iterations


class TestSSWPReference:
    def test_matches_widest_path_oracle(self, weighted_graph):
        result = sswp_reference(weighted_graph, source=0)
        oracle = widest_path_reference(weighted_graph, source=0)
        assert result.converged
        assert np.array_equal(result.values, oracle.values)

    def test_source_width_unbounded(self, weighted_graph):
        result = sswp_reference(weighted_graph, source=3)
        assert result.values[3] == UNBOUNDED

    def test_disconnected_vertices_stay_width_zero(self,
                                                   disconnected_graph):
        result = sswp_reference(disconnected_graph, source=0)
        assert result.converged
        # Only the triangle is reachable from 0.
        assert np.all(result.values[[1, 2]] > 0)
        assert np.all(result.values[3:] == 0.0)
        # Widest into 1: direct 0->1 has width 3, but 0->2->1 carries
        # min(7, 6) = 6.
        assert result.values[1] == 6.0

    def test_rejects_nonpositive_weights(self):
        graph = Graph.from_edges([(0, 1, 0.0)], num_vertices=2,
                                 weighted=True)
        with pytest.raises(GraphFormatError):
            sswp_reference(graph, source=0)

    def test_rejects_bad_source(self, disconnected_graph):
        with pytest.raises(GraphFormatError):
            sswp_reference(disconnected_graph, source=99)

    def test_program_descriptor(self):
        program = get_program("sswp", source=2)
        assert program.pattern is MappingPattern.PARALLEL_ADD_OP
        assert program.reduce_op == "max"
        assert program.needs_active_list
        assert program.reduce_identity == 0.0

    def test_dual_of_sssp_on_a_chain(self):
        """On a chain the bottleneck is the minimum edge weight seen."""
        edges = [(0, 1, 9.0), (1, 2, 4.0), (2, 3, 7.0)]
        graph = Graph.from_edges(edges, num_vertices=4, weighted=True)
        result = sswp_reference(graph, source=0)
        assert list(result.values) == [UNBOUNDED, 9.0, 4.0, 4.0]


class TestPPRReference:
    def test_restart_mass_concentrates_near_source(self, weighted_graph):
        result = ppr_reference(weighted_graph, source=0)
        assert result.converged
        assert result.values[0] >= 1.0 - 0.85  # at least the restart

    def test_matches_linear_recurrence(self):
        """PPR satisfies p = r M p + (1-r) e_s at the fixpoint."""
        graph = rmat(5, 120, seed=4, name="ppr32")
        damping = 0.85
        result = ppr_reference(graph, source=2, damping=damping,
                               tolerance=1e-12, max_iterations=500)
        n = graph.num_vertices
        src = np.asarray(graph.adjacency.rows)
        dst = np.asarray(graph.adjacency.cols)
        deg = np.maximum(graph.out_degrees().astype(float), 1.0)
        m = np.zeros((n, n))
        np.add.at(m, (dst, src), 1.0 / deg[src])
        restart = np.zeros(n)
        restart[2] = 1.0 - damping
        fixpoint = damping * m @ result.values + restart
        assert np.allclose(result.values, fixpoint, atol=1e-10)

    def test_different_sources_rank_differently(self, weighted_graph):
        a = ppr_reference(weighted_graph, source=0)
        b = ppr_reference(weighted_graph, source=7)
        assert not np.array_equal(a.values, b.values)

    def test_rejects_bad_parameters(self, disconnected_graph):
        with pytest.raises(GraphFormatError):
            ppr_reference(disconnected_graph, source=99)
        with pytest.raises(ValueError):
            PPRProgram(damping=1.5)

    def test_program_descriptor(self):
        program = get_program("ppr", source=1, damping=0.7)
        assert program.pattern is MappingPattern.PARALLEL_MAC
        assert not program.needs_active_list
        assert program.damping == 0.7
        assert program.unit_interval_coefficients


class TestAcceleratorEquivalence:
    """Reference vs functional device chain, batched vs per-tile."""

    def test_kcore_functional_is_exact(self, weighted_graph):
        reference = kcore_reference(weighted_graph, k=3)
        result, stats = GraphR(functional_config()).run(
            "kcore", weighted_graph, k=3)
        assert np.array_equal(result.values, reference.values)
        assert result.iterations == reference.iterations

    def test_sswp_functional_is_exact(self, weighted_graph):
        reference = sswp_reference(weighted_graph, source=0)
        result, _ = GraphR(functional_config()).run(
            "sswp", weighted_graph, source=0)
        assert np.array_equal(result.values, reference.values)
        assert result.iterations == reference.iterations

    def test_ppr_functional_within_quantisation(self, weighted_graph):
        reference = ppr_reference(weighted_graph, source=0)
        result, _ = GraphR(functional_config()).run(
            "ppr", weighted_graph, source=0)
        assert np.max(np.abs(result.values - reference.values)) <= 5e-2

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("kcore", {"k": 3}),
        ("sswp", {"source": 0}),
        ("ppr", {"source": 0}),
    ])
    def test_batched_matches_per_tile(self, weighted_graph, algorithm,
                                      kwargs):
        loop, loop_stats = GraphR(functional_config(0)).run(
            algorithm, weighted_graph, **kwargs)
        for batch_size in (1, 7, 512):
            batched, stats = GraphR(functional_config(batch_size)).run(
                algorithm, weighted_graph, **kwargs)
            assert np.array_equal(batched.values, loop.values)
            assert stats.to_dict() == loop_stats.to_dict()

    def test_kcore_functional_disconnected(self, disconnected_graph):
        reference = kcore_reference(disconnected_graph, k=2)
        result, _ = GraphR(functional_config()).run(
            "kcore", disconnected_graph, k=2)
        assert np.array_equal(result.values, reference.values)

    def test_sswp_functional_disconnected(self, disconnected_graph):
        reference = sswp_reference(disconnected_graph, source=0)
        result, _ = GraphR(functional_config()).run(
            "sswp", disconnected_graph, source=0)
        assert np.array_equal(result.values, reference.values)


class TestRuntimePlumbing:
    def test_registry_dispatch(self, weighted_graph):
        for algorithm, kwargs in (("kcore", {"k": 2}),
                                  ("sswp", {"source": 0}),
                                  ("ppr", {"source": 0})):
            result = run_reference(algorithm, weighted_graph, **kwargs)
            assert result.algorithm == algorithm

    def test_sswp_defaults_to_weighted_datasets(self):
        from repro.runtime import Job
        assert "sswp" in weighted_algorithms()
        assert Job("sswp", "WV").resolved_weighted
        assert not Job("kcore", "WV").resolved_weighted
        assert not Job("ppr", "WV").resolved_weighted

    def test_jobs_carry_distinct_content_keys(self):
        from repro.runtime import Job
        keys = {Job("kcore", "WV",
                    run_kwargs={"k": k}).content_key()
                for k in (2, 3, 4)}
        keys |= {Job("ppr", "WV",
                     run_kwargs={"source": s}).content_key()
                 for s in (0, 1)}
        assert len(keys) == 5

    def test_batch_runner_runs_all_three(self, tmp_path):
        from repro.runtime import BatchRunner
        runner = BatchRunner(cache_dir=tmp_path)
        jobs = [
            runner.make_job("kcore", "WV", k=2),
            runner.make_job("sswp", "WV", source=0),
            runner.make_job("ppr", "WV", source=0, max_iterations=5),
        ]
        results = runner.run_jobs(jobs)
        assert all(result.ok for result in results)
        rerun = runner.run_jobs(jobs)
        assert all(result.from_cache for result in rerun)

    def test_baseline_platforms_run_the_new_workloads(self,
                                                      weighted_graph):
        from repro.baselines import CPUPlatform, GPUPlatform
        for platform in (CPUPlatform(), GPUPlatform()):
            for algorithm, kwargs in (("kcore", {"k": 2}),
                                      ("sswp", {"source": 0}),
                                      ("ppr", {"source": 0})):
                result, stats = platform.run(algorithm, weighted_graph,
                                             **kwargs)
                assert stats.seconds > 0
