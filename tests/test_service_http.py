"""Tests for the HTTP API and the ServiceClient (incl. as a sweep
backend)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import JobError
from repro.hw.stats import RunStats
from repro.runtime import BatchRunner
from repro.runtime.job import Job
from repro.service import (ServiceClient, SimulationService,
                           serve_in_thread)

ENTRIES = [
    {"algorithm": "spmv", "dataset": "WV"},
    {"algorithm": "bfs", "dataset": "WV", "platform": "cpu",
     "run_kwargs": {"source": 0}},
    {"algorithm": "pagerank", "dataset": "WV",
     "run_kwargs": {"max_iterations": 3}},
]


@pytest.fixture
def served(tmp_path):
    service = SimulationService(tmp_path / "svc" / "jobs.db",
                                workers=2)
    service.start()
    server = serve_in_thread(service)
    client = ServiceClient(server.url, poll_interval_s=0.05)
    yield service, server, client
    server.shutdown()
    service.stop()


@pytest.fixture
def queue_only(tmp_path):
    service = SimulationService(tmp_path / "q" / "jobs.db", workers=0)
    service.start()
    server = serve_in_thread(service)
    client = ServiceClient(server.url, poll_interval_s=0.05)
    yield service, server, client
    server.shutdown()
    service.stop()


class TestAPI:
    def test_health(self, served):
        _, _, client = served
        assert client.health()

    def test_submit_poll_result_matches_batch(self, served):
        _, _, client = served
        submissions = client.submit(ENTRIES)
        details = client.wait_for([s["id"] for s in submissions],
                                  timeout_s=90)
        assert [d["state"] for d in details] == ["done"] * 3

        batch = BatchRunner().run_jobs(
            [Job.from_dict(entry) for entry in ENTRIES])
        for detail, expected in zip(details, batch):
            # identity_dict: the service run and the local batch run
            # each record their own wall-clock trace; every simulated
            # value must still match exactly.
            assert RunStats.from_dict(detail["stats"]).identity_dict() \
                == expected.stats.identity_dict()

    def test_resubmit_served_from_cache_immediately(self, served):
        _, _, client = served
        submissions = client.submit(ENTRIES[:1])
        client.wait_for([submissions[0]["id"]], timeout_s=90)
        again = client.submit(ENTRIES[:1])
        assert again[0]["state"] == "done"
        assert again[0]["from_cache"]

    def test_single_entry_body(self, served):
        service, server, _ = served
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=json.dumps(ENTRIES[0]).encode(),
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 202
            payload = json.loads(response.read().decode())
        assert len(payload["submissions"]) == 1

    def test_listing_and_state_filter(self, queue_only):
        _, _, client = queue_only
        client.submit(ENTRIES)
        assert len(client.jobs()) == 3
        assert len(client.jobs(state="queued")) == 3
        assert client.jobs(state="done") == []
        with pytest.raises(JobError):  # 400 with the store's message
            client.jobs(state="exploded")

    def test_unknown_job_is_404(self, served):
        _, _, client = served
        with pytest.raises(JobError) as err:
            client.job("jdeadbeef")
        assert "404" in str(err.value)

    def test_cancel_flow(self, queue_only):
        _, _, client = queue_only
        submission = client.submit(ENTRIES[:1])[0]
        assert client.cancel(submission["id"])
        assert client.job(submission["id"])["state"] == "cancelled"
        with pytest.raises(JobError) as err:  # no longer queued
            client.cancel(submission["id"])
        assert "409" in str(err.value)

    def test_malformed_body_is_400(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            server.url + "/v1/jobs", data=b"not json{",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_invalid_job_entry_is_400(self, served):
        _, _, client = served
        with pytest.raises(JobError) as err:
            client.submit([{"algorithm": "dfs", "dataset": "WV"}])
        assert "400" in str(err.value)

    def test_unknown_route_is_404(self, served):
        _, server, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/v2/nope", timeout=10)
        assert err.value.code == 404

    def test_metrics_endpoint(self, served):
        _, _, client = served
        submissions = client.submit(ENTRIES)
        client.wait_for([s["id"] for s in submissions], timeout_s=90)
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["workers"]["total"] == 2
        assert metrics["jobs"]["completed"] == 3
        assert "hit_rate" in metrics["cache"]

    def test_unreachable_service_raises_joberror(self):
        client = ServiceClient("http://127.0.0.1:1", timeout_s=0.5)
        assert not client.health()
        with pytest.raises(JobError):
            client.metrics()


class TestSocketInheritance:
    def test_forked_worker_does_not_hold_the_port(self, tmp_path):
        """An orphaned worker (daemon SIGKILLed mid-job) must not keep
        the HTTP port bound: children close the inherited listening
        socket right after fork, so a restarted daemon can bind."""
        import sys

        from repro.runtime.scheduler import WorkerProcess
        from repro.service.http import ServiceHTTPServer

        if sys.platform != "linux":
            pytest.skip("fd inheritance is a fork-platform concern")

        service = SimulationService(tmp_path / "jobs.db", workers=0)
        service.start()
        first = ServiceHTTPServer(("127.0.0.1", 0), service)
        port = first.server_address[1]
        worker = WorkerProcess()  # forked while the socket is bound
        try:
            first.server_close()  # parent's fd gone; child's remains?
            # Rebinding succeeds only once the child has run its
            # after-fork hook and closed its copy — retry briefly to
            # let the freshly forked process reach it.
            import time

            deadline = time.monotonic() + 10.0
            while True:
                try:
                    second = ServiceHTTPServer(("127.0.0.1", port),
                                               service)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)
            second.server_close()
        finally:
            worker.stop()
            service.stop()


class TestClientBackend:
    def test_run_jobs_matches_batch_runner(self, served):
        _, _, client = served
        jobs = [Job.from_dict(entry) for entry in ENTRIES]
        remote = client.run_jobs(jobs, timeout_s=90)
        local = BatchRunner().run_jobs(jobs)
        for via_service, via_batch in zip(remote, local):
            assert via_service.ok
            # identity_dict: service and batch executions carry their
            # own wall-clock traces; the simulated values must match.
            assert via_service.stats.identity_dict() == \
                via_batch.stats.identity_dict()

    def test_run_jobs_surfaces_failures(self, served):
        _, _, client = served
        result = client.run_jobs([Job(
            "sssp", "WV", run_kwargs={"source": 10 ** 9})],
            timeout_s=90)[0]
        assert not result.ok
        with pytest.raises(JobError):
            result.unwrap()

    def test_run_convenience(self, served):
        _, _, client = served
        stats = client.run("spmv", "WV")
        assert stats.identity_dict() == BatchRunner().run(
            "spmv", "WV").identity_dict()

    def test_sweep_through_service_matches_batch(self, served):
        from repro.experiments.sweeps import geometry_sweep

        _, _, client = served
        via_service = geometry_sweep(
            "WV", crossbar_sizes=(4, 8), ge_counts=(16,),
            run_kwargs={"max_iterations": 2}, runner=client)
        via_batch = geometry_sweep(
            "WV", crossbar_sizes=(4, 8), ge_counts=(16,),
            run_kwargs={"max_iterations": 2}, runner=BatchRunner())
        assert via_service == via_batch

    def test_wait_for_timeout(self, queue_only):
        _, _, client = queue_only
        submission = client.submit(ENTRIES[:1])[0]  # never executes
        with pytest.raises(JobError) as err:
            client.wait_for([submission["id"]], timeout_s=0.3)
        assert "timed out" in str(err.value)
