"""Controller tests: functional execution must reproduce the reference
algorithms through the simulated device chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_reference
from repro.algorithms.pagerank import pagerank_reference
from repro.algorithms.registry import get_program
from repro.algorithms.spmv import spmv_reference
from repro.algorithms.sssp import sssp_reference
from repro.core.config import GraphRConfig
from repro.core.controller import Controller
from repro.errors import MappingError


@pytest.fixture
def cfg():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        mode="functional", max_iterations=80)


class TestFunctionalCorrectness:
    def test_sssp_exact(self, small_weighted_graph, cfg):
        controller = Controller(cfg, small_weighted_graph,
                                get_program("sssp", source=0))
        result, stats = controller.run_functional(source=0)
        reference = sssp_reference(small_weighted_graph, source=0)
        assert np.array_equal(result.values, reference.values)
        assert result.iterations == reference.iterations
        assert result.converged

    def test_bfs_exact(self, small_graph, cfg):
        controller = Controller(cfg, small_graph,
                                get_program("bfs", source=0))
        result, _ = controller.run_functional(source=0)
        reference = bfs_reference(small_graph, source=0)
        assert np.array_equal(result.values, reference.values)

    def test_pagerank_close(self, small_graph, cfg):
        controller = Controller(cfg, small_graph, get_program("pagerank"))
        result, _ = controller.run_functional()
        reference = pagerank_reference(small_graph)
        assert np.allclose(result.values, reference.values, atol=2e-3)

    def test_spmv_close(self, small_graph, cfg):
        controller = Controller(cfg, small_graph, get_program("spmv"))
        result, _ = controller.run_functional()
        reference = spmv_reference(small_graph)
        assert np.allclose(result.values, reference.values, atol=5e-2)

    def test_cf_functional_rejected(self, small_graph, cfg):
        controller = Controller(cfg, small_graph, get_program("cf"))
        with pytest.raises(MappingError):
            controller.run_functional()


class TestFunctionalStats:
    def test_stats_populated(self, small_weighted_graph, cfg):
        controller = Controller(cfg, small_weighted_graph,
                                get_program("sssp", source=0))
        _, stats = controller.run_functional(source=0)
        assert stats.platform == "graphr"
        assert stats.seconds > 0
        assert stats.joules > 0
        assert stats.iterations > 0
        assert stats.extra["mode"] == "functional"
        assert stats.energy.energy_of("crossbar_write") > 0

    def test_time_includes_setup(self, small_weighted_graph, cfg):
        controller = Controller(cfg, small_weighted_graph,
                                get_program("sssp", source=0))
        _, stats = controller.run_functional(source=0)
        assert stats.latency.seconds_of("setup") \
            == pytest.approx(cfg.setup_overhead_s)

    def test_trace_recorded(self, small_graph, cfg):
        controller = Controller(cfg, small_graph,
                                get_program("bfs", source=0))
        result, _ = controller.run_functional(source=0)
        assert result.trace.iterations == result.iterations
        assert result.trace.frontiers is not None


class TestAnalyticMode:
    def test_values_are_reference_values(self, small_weighted_graph):
        cfg = GraphRConfig(mode="analytic")
        controller = Controller(cfg, small_weighted_graph,
                                get_program("sssp", source=0))
        result, stats = controller.run_analytic(source=0)
        reference = sssp_reference(small_weighted_graph, source=0)
        assert np.array_equal(result.values, reference.values)
        assert stats.extra["mode"] == "analytic"
        assert stats.seconds > 0

    def test_frontier_iterations_charged_individually(
            self, small_weighted_graph):
        cfg = GraphRConfig(mode="analytic")
        controller = Controller(cfg, small_weighted_graph,
                                get_program("sssp", source=0))
        _, stats = controller.run_analytic(source=0)
        reference = sssp_reference(small_weighted_graph, source=0)
        assert stats.iterations == reference.iterations

    def test_mac_iterations_charged_uniformly(self, small_graph):
        cfg = GraphRConfig(mode="analytic")
        controller = Controller(cfg, small_graph, get_program("pagerank"))
        _, short = controller.run_analytic(max_iterations=2)
        controller2 = Controller(cfg, small_graph,
                                 get_program("pagerank"))
        _, long = controller2.run_analytic(max_iterations=8)
        ratio = ((long.seconds - cfg.setup_overhead_s)
                 / (short.seconds - cfg.setup_overhead_s))
        assert ratio == pytest.approx(4.0, rel=0.01)


class TestFunctionalVsAnalyticCosts:
    def test_same_energy_for_mac_run(self, small_graph):
        """For a fixed iteration count, functional and analytic modes
        must charge (nearly) identical energy: same events, same cost
        model.  Tiny deviations come from coefficient codes that
        quantise to zero in the functional engine."""
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                           num_ges=2, max_iterations=3, tolerance=1e-12)
        func = Controller(cfg, small_graph, get_program("spmv"))
        _, f_stats = func.run_functional()
        ana = Controller(cfg, small_graph, get_program("spmv"))
        _, a_stats = ana.run_analytic()
        assert f_stats.joules == pytest.approx(a_stats.joules, rel=0.05)
        assert f_stats.seconds == pytest.approx(a_stats.seconds, rel=0.05)
