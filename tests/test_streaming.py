"""Unit tests for the streaming-apply scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.vertex_program import MappingPattern
from repro.core.config import GraphRConfig
from repro.core.streaming import SubgraphStreamer
from repro.errors import PartitionError
from repro.graph.generators import rmat


@pytest.fixture
def cfg():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        mode="functional")


@pytest.fixture
def streamer(small_weighted_graph, cfg):
    return SubgraphStreamer(small_weighted_graph, cfg)


class TestTileIteration:
    def test_every_edge_appears_exactly_once(self, streamer,
                                              small_weighted_graph):
        seen = []
        for tile in streamer.iter_subgraphs():
            seen.extend(tile.edge_ids.tolist())
        assert sorted(seen) == list(range(small_weighted_graph.num_edges))

    def test_tiles_in_ascending_order(self, streamer):
        indices = [t.index for t in streamer.iter_subgraphs()]
        assert indices == sorted(indices)
        assert len(indices) == streamer.num_nonempty_subgraphs

    def test_local_coordinates_in_range(self, streamer, cfg):
        for tile in streamer.iter_subgraphs():
            assert np.all(tile.rows_local >= 0)
            assert np.all(tile.rows_local < cfg.tile_rows)
            assert np.all(tile.cols_local >= 0)
            assert np.all(tile.cols_local < cfg.tile_cols)

    def test_coordinates_reconstruct_edges(self, streamer,
                                           small_weighted_graph):
        """row_base + local row must equal the original source vertex."""
        src = np.asarray(small_weighted_graph.adjacency.rows)
        dst = np.asarray(small_weighted_graph.adjacency.cols)
        for tile in streamer.iter_subgraphs():
            assert np.array_equal(src[tile.edge_ids],
                                  tile.row_base + tile.rows_local)
            assert np.array_equal(dst[tile.edge_ids],
                                  tile.col_base + tile.cols_local)

    def test_frontier_filtering(self, streamer, small_weighted_graph):
        n = small_weighted_graph.num_vertices
        frontier = np.zeros(n, dtype=bool)
        frontier[0] = True
        src = np.asarray(small_weighted_graph.adjacency.rows)
        expected = int((src == 0).sum())
        got = sum(t.nnz for t in streamer.iter_subgraphs(frontier))
        assert got == expected

    def test_empty_frontier_yields_nothing(self, streamer,
                                           small_weighted_graph):
        frontier = np.zeros(small_weighted_graph.num_vertices, dtype=bool)
        assert list(streamer.iter_subgraphs(frontier)) == []

    def test_subgraph_origin_round_trip(self, streamer, cfg):
        for tile in streamer.iter_subgraphs():
            row, col = streamer.subgraph_origin(tile.index)
            assert (row, col) == (tile.row_base, tile.col_base)
            assert row % cfg.tile_rows == 0
            assert col % cfg.tile_cols == 0


class TestEvents:
    def test_full_iteration_counts(self, streamer, small_weighted_graph):
        events = streamer.iteration_events(MappingPattern.PARALLEL_MAC)
        assert events.edges == small_weighted_graph.num_edges
        assert events.scanned_edges == small_weighted_graph.num_edges
        assert events.subgraphs == streamer.num_nonempty_subgraphs
        assert events.tiles >= events.subgraphs
        assert events.presentations == events.tiles
        assert not events.addop

    def test_addop_presentations_are_rows(self, streamer):
        events = streamer.iteration_events(MappingPattern.PARALLEL_ADD_OP)
        assert events.presentations == events.touched_rows
        assert events.addop

    def test_frontier_reduces_counts(self, streamer,
                                     small_weighted_graph):
        n = small_weighted_graph.num_vertices
        frontier = np.zeros(n, dtype=bool)
        frontier[:4] = True
        full = streamer.iteration_events(MappingPattern.PARALLEL_MAC)
        partial = streamer.iteration_events(MappingPattern.PARALLEL_MAC,
                                            frontier=frontier)
        assert partial.edges <= full.edges
        assert partial.tiles <= full.tiles
        # Scans stay full: GraphR streams sequentially (Section 3.5).
        assert partial.scanned_edges == full.scanned_edges

    def test_empty_frontier_is_free(self, streamer,
                                    small_weighted_graph):
        frontier = np.zeros(small_weighted_graph.num_vertices, dtype=bool)
        events = streamer.iteration_events(MappingPattern.PARALLEL_MAC,
                                           frontier=frontier)
        assert events.edges == 0
        assert events.tiles == 0

    def test_bad_frontier_length(self, streamer):
        with pytest.raises(PartitionError):
            streamer.iteration_events(MappingPattern.PARALLEL_MAC,
                                      frontier=np.zeros(3, dtype=bool))

    def test_work_factor_scales_presentations_not_writes(self, streamer):
        one = streamer.iteration_events(MappingPattern.PARALLEL_MAC)
        many = streamer.iteration_events(MappingPattern.PARALLEL_MAC,
                                         work_factor=8)
        assert many.presentations == 8 * one.presentations
        assert many.edges == one.edges
        assert many.tiles == one.tiles

    def test_skip_disabled_counts_all_slots(self, small_weighted_graph):
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                           skip_empty_subgraphs=False)
        streamer = SubgraphStreamer(small_weighted_graph, cfg)
        events = streamer.iteration_events(MappingPattern.PARALLEL_MAC)
        assert events.subgraphs == streamer.total_subgraph_slots
        assert events.tiles == (streamer.total_subgraph_slots
                                * cfg.logical_crossbars)


class TestFunctionalAnalyticConsistency:
    def test_event_counts_match_tile_walk(self, small_weighted_graph):
        """Analytic tile/subgraph counts must equal what the functional
        walk visits."""
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2)
        streamer = SubgraphStreamer(small_weighted_graph, cfg)
        events = streamer.iteration_events(MappingPattern.PARALLEL_MAC)

        s = cfg.crossbar_size
        tiles = set()
        rows = set()
        for tile in streamer.iter_subgraphs():
            for r, c in zip(tile.rows_local, tile.cols_local):
                key = (tile.index, c // s)
                tiles.add(key)
                rows.add((key, r))
        assert events.tiles == len(tiles)
        assert events.touched_rows == len(rows)

    def test_counts_scale_with_graph(self):
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2)
        small = SubgraphStreamer(rmat(6, 100, seed=1), cfg)
        large = SubgraphStreamer(rmat(6, 800, seed=1), cfg)
        se = small.iteration_events(MappingPattern.PARALLEL_MAC)
        le = large.iteration_events(MappingPattern.PARALLEL_MAC)
        assert le.tiles > se.tiles
        assert le.edges > se.edges
