"""Unit tests for PageRank (reference + vertex program), with a
networkx oracle."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram, pagerank_reference
from repro.algorithms.vertex_program import MappingPattern
from repro.errors import ConvergenceError
from repro.graph.generators import chain_graph, complete_graph, rmat


def _to_networkx(graph):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for src, dst, _ in graph.adjacency:
        g.add_edge(src, dst)
    return g


class TestReference:
    def test_distribution_shape(self, small_graph):
        result = pagerank_reference(small_graph)
        assert result.converged
        assert np.all(result.values >= 0)
        # Leaked mass from dangling vertices keeps the sum <= 1.
        assert 0 < result.values.sum() <= 1.0 + 1e-9

    def test_matches_networkx_ranking(self, small_graph):
        """Top vertices must agree with networkx's PageRank."""
        ours = pagerank_reference(small_graph, damping=0.85)
        nx_scores = nx.pagerank(_to_networkx(small_graph), alpha=0.85)
        top_ours = set(np.argsort(ours.values)[-5:])
        top_nx = set(sorted(nx_scores, key=nx_scores.get)[-5:])
        assert len(top_ours & top_nx) >= 4

    def test_complete_graph_uniform(self):
        graph = complete_graph(8)
        result = pagerank_reference(graph)
        assert np.allclose(result.values, result.values[0])

    def test_trace_records_all_edges(self, small_graph):
        result = pagerank_reference(small_graph)
        assert result.trace.iterations == result.iterations
        assert all(e == small_graph.num_edges
                   for e in result.trace.active_edges)

    def test_iteration_budget(self, small_graph):
        result = pagerank_reference(small_graph, max_iterations=3,
                                    tolerance=1e-15)
        assert result.iterations == 3
        assert not result.converged

    def test_divergence_raises_when_asked(self, small_graph):
        with pytest.raises(ConvergenceError):
            pagerank_reference(small_graph, max_iterations=1,
                               tolerance=1e-15, raise_on_divergence=True)

    def test_damping_extremes(self, small_graph):
        low = pagerank_reference(small_graph, damping=0.1)
        assert low.converged
        # Low damping: nearly uniform.
        n = small_graph.num_vertices
        assert np.allclose(low.values, 1.0 / n, atol=0.05)


class TestProgram:
    def test_descriptor(self):
        program = PageRankProgram()
        assert program.pattern is MappingPattern.PARALLEL_MAC
        assert program.reduce_op == "add"
        assert not program.needs_active_list
        assert program.parallelism_degree_exponent == 2

    def test_initial_uniform(self, small_graph):
        props = PageRankProgram().initial_properties(small_graph)
        assert np.allclose(props, 1.0 / small_graph.num_vertices)

    def test_coefficients_are_damped_inverse_degree(self, small_graph):
        program = PageRankProgram(damping=0.8)
        coeffs = program.crossbar_coefficient(small_graph)
        out_deg = small_graph.out_degrees()
        src = np.asarray(small_graph.adjacency.rows)
        assert np.allclose(coeffs, 0.8 / out_deg[src])

    def test_apply_adds_teleport(self, small_graph):
        program = PageRankProgram(damping=0.8)
        n = small_graph.num_vertices
        reduced = np.zeros(n)
        out = program.apply(reduced, reduced, small_graph)
        assert np.allclose(out, 0.2 / n)

    def test_convergence_check(self, small_graph):
        program = PageRankProgram(tolerance=1e-3)
        a = np.full(4, 0.25)
        assert program.has_converged(a, a + 1e-5, 1)
        assert not program.has_converged(a, a + 1e-2, 1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PageRankProgram(damping=1.5)
        with pytest.raises(ValueError):
            PageRankProgram(tolerance=0.0)

    def test_fixed_point_property(self):
        """The converged vector is a fixed point of the update."""
        graph = rmat(6, 200, seed=9)
        result = pagerank_reference(graph, tolerance=1e-12)
        n = graph.num_vertices
        src = np.asarray(graph.adjacency.rows)
        dst = np.asarray(graph.adjacency.cols)
        deg = np.where(graph.out_degrees() > 0, graph.out_degrees(), 1)
        again = np.full(n, 0.15 / n)
        np.add.at(again, dst, 0.85 * result.values[src] / deg[src])
        assert np.allclose(again, result.values, atol=1e-9)
