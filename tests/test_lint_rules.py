"""Fixture-pair tests for every REP1xx rule: one seeded violation and
one clean variant per rule, asserting exact rule IDs and line numbers.

Each test builds a small throwaway package under ``tmp_path`` and runs
the linter with a bespoke :class:`LintPolicy` scoped to that package,
so the rules are exercised in isolation from this repository's own
policy map.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintPolicy, run_lint
from repro.errors import LintError


def make_pkg(tmp_path: Path, files: dict) -> Path:
    """Materialize ``files`` (relative path -> source) as a package."""
    pkg = tmp_path / "fixturepkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for rel, text in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        parent = path.parent
        while parent != tmp_path and \
                not (parent / "__init__.py").exists():
            (parent / "__init__.py").write_text("")
            parent = parent.parent
        path.write_text(textwrap.dedent(text))
    return pkg


def lint(pkg: Path, policy: LintPolicy, rule: str):
    result = run_lint([pkg], select=[rule], policy=policy)
    return result.findings


def hits(findings, rule):
    return [(f.rule, f.line) for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# REP101 — determinism
# ----------------------------------------------------------------------
class TestREP101:
    policy = LintPolicy(compute_roots=("fixturepkg.engine",))

    def test_unseeded_rng_and_wall_clock_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": """\
            import time

            import numpy as np


            def kernel():
                rng = np.random.default_rng()
                started = time.time()
                return rng, started
            """})
        findings = lint(pkg, self.policy, "REP101")
        assert hits(findings, "REP101") == [("REP101", 7),
                                            ("REP101", 8)]
        assert "unseeded default_rng" in findings[0].message
        assert "wall clock" in findings[1].message

    def test_seeded_rng_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": """\
            import numpy as np


            def kernel(seed):
                return np.random.default_rng(seed)
            """})
        assert lint(pkg, self.policy, "REP101") == ()

    def test_stdlib_random_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": """\
            import random


            def kernel():
                return random.random()
            """})
        assert hits(lint(pkg, self.policy, "REP101"),
                    "REP101") == [("REP101", 5)]

    def test_unreachable_module_not_checked(self, tmp_path):
        # cli.py is not in the compute roots' import closure, so its
        # wall-clock read is observational and allowed.
        pkg = make_pkg(tmp_path, {
            "engine.py": "def kernel():\n    return 0\n",
            "cli.py": "import time\n\n\ndef now():\n"
                      "    return time.time()\n"})
        assert lint(pkg, self.policy, "REP101") == ()

    def test_unknown_compute_root_is_loud(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": "X = 1\n"})
        bad = LintPolicy(compute_roots=("fixturepkg.missing",))
        with pytest.raises(LintError, match="missing"):
            run_lint([pkg], select=["REP101"], policy=bad)


# ----------------------------------------------------------------------
# REP102 — filesystem iteration order
# ----------------------------------------------------------------------
class TestREP102:
    policy = LintPolicy()

    def test_unsorted_scan_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": """\
            def scan(root):
                found = []
                for path in root.glob("*.json"):
                    found.append(path)
                return found
            """})
        findings = lint(pkg, self.policy, "REP102")
        assert hits(findings, "REP102") == [("REP102", 3)]
        assert "glob()" in findings[0].message

    def test_sorted_scan_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": """\
            def scan(root):
                found = []
                for path in sorted(root.glob("*.json")):
                    found.append(path)
                return found
            """})
        assert lint(pkg, self.policy, "REP102") == ()

    def test_order_insensitive_consumer_allowed(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": """\
            def count(root):
                return sum(1 for _ in root.glob("*.json"))
            """})
        assert lint(pkg, self.policy, "REP102") == ()

    def test_unsorted_iterdir_and_listdir_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": """\
            import os


            def scan(root):
                dirs = [p for p in root.iterdir()]
                names = list(os.listdir(root))
                return dirs, names
            """})
        assert hits(lint(pkg, self.policy, "REP102"),
                    "REP102") == [("REP102", 5), ("REP102", 6)]


# ----------------------------------------------------------------------
# REP103 — content-key completeness
# ----------------------------------------------------------------------
class TestREP103:
    policy = LintPolicy()

    def test_missing_field_flagged_at_field_line(self, tmp_path):
        pkg = make_pkg(tmp_path, {"spec.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Spec:
                alpha: int
                beta: int

                def content_key(self):
                    return {"alpha": self.alpha}
            """})
        findings = lint(pkg, self.policy, "REP103")
        assert hits(findings, "REP103") == [("REP103", 7)]
        assert "Spec.beta" in findings[0].message

    def test_field_reached_through_helper_is_clean(self, tmp_path):
        # The closure follows self.<method> indirection, like
        # Job.canonical_dict -> Job.resolved_config -> config.
        pkg = make_pkg(tmp_path, {"spec.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Spec:
                alpha: int
                beta: int

                def resolved_beta(self):
                    return self.beta or 0

                def content_key(self):
                    return {"alpha": self.alpha,
                            "beta": self.resolved_beta()}
            """})
        assert lint(pkg, self.policy, "REP103") == ()

    def test_fields_iteration_is_complete_by_construction(
            self, tmp_path):
        pkg = make_pkg(tmp_path, {"spec.py": """\
            from dataclasses import dataclass, fields


            @dataclass(frozen=True)
            class Spec:
                alpha: int
                beta: int

                def content_key(self):
                    return {f.name: getattr(self, f.name)
                            for f in fields(self)}
            """})
        assert lint(pkg, self.policy, "REP103") == ()

    def test_declared_volatile_field_allowed(self, tmp_path):
        policy = LintPolicy(
            hash_volatile_fields={"Spec": frozenset({"beta"})})
        pkg = make_pkg(tmp_path, {"spec.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Spec:
                alpha: int
                beta: int

                def content_key(self):
                    return {"alpha": self.alpha}
            """})
        assert lint(pkg, policy, "REP103") == ()


# ----------------------------------------------------------------------
# REP104 — shared-memory lifecycle
# ----------------------------------------------------------------------
class TestREP104:
    policy = LintPolicy(shm_owner_modules=("fixturepkg.resident",))

    def test_create_without_exception_unlink_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"resident.py": """\
            from multiprocessing import shared_memory


            def publish(name):
                shm = shared_memory.SharedMemory(name=name,
                                                 create=True, size=8)
                _untrack(shm)
                return shm
            """})
        findings = lint(pkg, self.policy, "REP104")
        assert hits(findings, "REP104") == [("REP104", 5)]
        assert "exception path" in findings[0].message

    def test_guarded_create_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"resident.py": """\
            from multiprocessing import shared_memory


            def publish(name):
                shm = shared_memory.SharedMemory(name=name,
                                                 create=True, size=8)
                try:
                    _untrack(shm)
                except BaseException:
                    unlink_segment(name)
                    raise
                return shm
            """})
        assert lint(pkg, self.policy, "REP104") == ()

    def test_attach_without_untrack_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"resident.py": """\
            from multiprocessing import shared_memory


            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """})
        findings = lint(pkg, self.policy, "REP104")
        assert hits(findings, "REP104") == [("REP104", 5)]
        assert "resource tracker" in findings[0].message

    def test_shm_outside_owner_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"other.py": """\
            from multiprocessing import shared_memory


            def sneaky(name):
                shm = shared_memory.SharedMemory(name=name)
                _untrack(shm)
                return shm
            """})
        findings = lint(pkg, self.policy, "REP104")
        assert hits(findings, "REP104") == [("REP104", 5)]
        assert "outside" in findings[0].message


# ----------------------------------------------------------------------
# REP105 — telemetry purity
# ----------------------------------------------------------------------
class TestREP105:
    policy = LintPolicy(hot_roots=("run_scan",))

    def test_ungated_counter_on_hot_path_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": """\
            def run_scan(metrics, rows):
                for row in rows:
                    inner(metrics, row)


            def inner(metrics, row):
                metrics.counter("ops", "help").inc()
                return row
            """})
        findings = lint(pkg, self.policy, "REP105")
        assert hits(findings, "REP105") == [("REP105", 7)]
        assert "ungated counter()" in findings[0].message

    def test_enabled_gate_variable_is_clean(self, tmp_path):
        # The engine's `observing = metrics.enabled()` idiom.
        pkg = make_pkg(tmp_path, {"engine.py": """\
            def run_scan(metrics, rows):
                for row in rows:
                    inner(metrics, row)


            def inner(metrics, row):
                observing = metrics.enabled()
                if observing:
                    metrics.counter("ops", "help").inc()
                return row
            """})
        assert lint(pkg, self.policy, "REP105") == ()

    def test_direct_enabled_test_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": """\
            def run_scan(metrics, rows):
                if metrics.enabled():
                    metrics.counter("ops", "help").inc()
                return rows
            """})
        assert lint(pkg, self.policy, "REP105") == ()

    def test_cold_function_not_checked(self, tmp_path):
        pkg = make_pkg(tmp_path, {"engine.py": """\
            def run_scan(rows):
                return rows


            def report(metrics):
                metrics.counter("ops", "help").inc()
            """})
        assert lint(pkg, self.policy, "REP105") == ()

    def test_volatile_key_in_hash_closure_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"stats.py": """\
            from dataclasses import dataclass, field


            @dataclass
            class Stats:
                cycles: int
                extra: dict = field(default_factory=dict)

                def content_hash(self):
                    return {"cycles": self.cycles,
                            "trace": self.extra.get("trace")}
            """})
        findings = lint(pkg, self.policy, "REP105")
        assert hits(findings, "REP105") == [("REP105", 11)]
        assert "'trace'" in findings[0].message

    def test_identity_contract_enforced(self, tmp_path):
        policy = LintPolicy(identity_contracts={
            "Stats": ("identity_dict", "VOLATILE_KEYS")})
        pkg = make_pkg(tmp_path, {"stats.py": """\
            VOLATILE_KEYS = ("trace",)


            class Stats:
                def to_dict(self):
                    return {}
            """})
        findings = lint(pkg, policy, "REP105")
        assert hits(findings, "REP105") == [("REP105", 4)]
        assert "identity_dict" in findings[0].message

    def test_identity_contract_satisfied(self, tmp_path):
        policy = LintPolicy(identity_contracts={
            "Stats": ("identity_dict", "VOLATILE_KEYS")})
        pkg = make_pkg(tmp_path, {"stats.py": """\
            VOLATILE_KEYS = ("trace",)


            class Stats:
                def identity_dict(self):
                    data = dict(x=1)
                    for key in VOLATILE_KEYS:
                        data.pop(key, None)
                    return data
            """})
        assert lint(pkg, policy, "REP105") == ()


# ----------------------------------------------------------------------
# REP106 — error taxonomy
# ----------------------------------------------------------------------
class TestREP106:
    policy = LintPolicy(
        error_scope_prefixes=("fixturepkg.runtime",))

    def test_bare_valueerror_in_scope_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"runtime/cachemod.py": """\
            def prune(max_bytes):
                if max_bytes < 0:
                    raise ValueError("must be >= 0")
                return []
            """})
        findings = lint(pkg, self.policy, "REP106")
        assert hits(findings, "REP106") == [("REP106", 3)]
        assert "bare ValueError" in findings[0].message

    def test_typed_error_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"runtime/cachemod.py": """\
            class CacheError(Exception):
                pass


            def prune(max_bytes):
                if max_bytes < 0:
                    raise CacheError("must be >= 0")
                return []
            """})
        assert lint(pkg, self.policy, "REP106") == ()

    def test_out_of_scope_module_not_checked(self, tmp_path):
        pkg = make_pkg(tmp_path, {"lib.py": """\
            def check(x):
                if x < 0:
                    raise ValueError("no")
            """})
        assert lint(pkg, self.policy, "REP106") == ()

    def test_bare_reraise_allowed(self, tmp_path):
        pkg = make_pkg(tmp_path, {"runtime/cachemod.py": """\
            def load(path):
                try:
                    return path.read_text()
                except OSError:
                    raise
            """})
        assert lint(pkg, self.policy, "REP106") == ()
