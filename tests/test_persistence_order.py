"""Tests for JSON persistence and the streaming-order cost trade-off."""

from __future__ import annotations

import pytest

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.harness import ComparisonRow
from repro.experiments.persistence import (
    figure_to_dict,
    load_figure_json,
    save_figure_json,
    stats_to_dict,
)
from repro.graph.generators import rmat
from repro.hw.stats import RunStats


class TestStatsSerialisation:
    def test_round_trip_fields(self):
        graph = rmat(6, 200, seed=1)
        _, stats = GraphR(GraphRConfig(mode="analytic")).run(
            "spmv", graph)
        payload = stats_to_dict(stats)
        assert payload["platform"] == "graphr"
        assert payload["seconds"] == stats.seconds
        assert payload["energy_breakdown"]["crossbar_write"] > 0
        assert "mode" in payload["extra"]

    def test_non_json_extra_dropped(self):
        stats = RunStats("cpu", "bfs", "x")
        stats.extra["ok"] = 1
        stats.extra["bad"] = object()
        payload = stats_to_dict(stats)
        assert "ok" in payload["extra"]
        assert "bad" not in payload["extra"]


class TestFigureSerialisation:
    @pytest.fixture
    def figure(self):
        row = ComparisonRow("pagerank", "WV", 2.0, 3.0,
                            RunStats("graphr", "pagerank", "WV",
                                     seconds=1.0),
                            RunStats("cpu", "pagerank", "WV",
                                     seconds=2.0))
        return FigureResult("Figure X", "test", [row],
                            geomean_speedup=2.0)

    def test_save_and_load(self, figure, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_json(figure, path)
        payload = load_figure_json(path)
        assert payload["figure"] == "Figure X"
        assert payload["rows"][0]["speedup"] == 2.0

    def test_load_rejects_non_figure(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ConfigError):
            load_figure_json(path)

    def test_dict_shape(self, figure):
        payload = figure_to_dict(figure)
        assert payload["geomean_speedup"] == 2.0
        assert payload["rows"][0]["baseline"]["platform"] == "cpu"


class TestStreamingOrderCost:
    """Figure 11: column-major should cost less register energy."""

    def _energy(self, order: str) -> tuple[float, float]:
        graph = rmat(7, 900, seed=3)
        cfg = GraphRConfig(mode="analytic", streaming_order=order,
                           block_size=8192)
        _, stats = GraphR(cfg).run("pagerank", graph, max_iterations=5)
        return (stats.energy.energy_of("reg_write"),
                stats.energy.energy_of("reg_read"))

    def test_column_major_cheaper_rego_writes(self):
        column_w, _ = self._energy("column")
        row_w, _ = self._energy("row")
        assert column_w < row_w

    def test_row_major_fewer_regi_reads(self):
        _, column_r = self._energy("column")
        _, row_r = self._energy("row")
        assert row_r <= column_r

    def test_total_time_unaffected_by_order(self):
        """The register trade is an energy/capacity story; the critical
        path through crossbars is order-independent."""
        graph = rmat(7, 900, seed=3)
        runs = []
        for order in ("column", "row"):
            cfg = GraphRConfig(mode="analytic", streaming_order=order)
            _, stats = GraphR(cfg).run("pagerank", graph,
                                       max_iterations=5)
            runs.append(stats.seconds)
        assert runs[0] == pytest.approx(runs[1])
