"""Tests for the node area model."""

from __future__ import annotations

import pytest

from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.hw.area import AreaParams, node_area_mm2


class TestAreaModel:
    def test_breakdown_sums(self):
        breakdown = node_area_mm2(GraphRConfig())
        parts = (breakdown.crossbars_mm2 + breakdown.adcs_mm2
                 + breakdown.salu_mm2 + breakdown.registers_mm2
                 + breakdown.controller_mm2)
        assert breakdown.total_mm2 == pytest.approx(parts)
        assert breakdown.total_mm2 > 0

    def test_adcs_dominate_crossbars(self):
        """The paper's motivation for sharing ADCs: they cost far more
        silicon than the crossbars they serve."""
        breakdown = node_area_mm2(GraphRConfig())
        assert breakdown.adcs_mm2 > breakdown.crossbars_mm2

    def test_area_scales_with_ges(self):
        small = node_area_mm2(GraphRConfig(num_ges=16))
        large = node_area_mm2(GraphRConfig(num_ges=64))
        assert large.total_mm2 > small.total_mm2
        assert large.adcs_mm2 == pytest.approx(4 * small.adcs_mm2)

    def test_crossbar_area_scales_quadratically(self):
        s8 = node_area_mm2(GraphRConfig(crossbar_size=8))
        s16 = node_area_mm2(GraphRConfig(crossbar_size=16))
        assert s16.crossbars_mm2 == pytest.approx(4 * s8.crossbars_mm2)

    def test_describe(self):
        text = node_area_mm2(GraphRConfig()).describe()
        assert "total" in text and "mm^2" in text

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            AreaParams(cell_um2=0.0)
