"""Smoke tests: the shipped examples must run end to end.

The CF example trains for ~30 s and is exercised manually; everything
else executes here so a broken example fails CI, not a user.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "shortest_paths",
    "components",
    "validate_and_size",
    "design_space",
    "batch_runtime",
    "service_client",
]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_platform_comparison_with_args(monkeypatch, capsys):
    module = _load("platform_comparison")
    monkeypatch.setattr(sys, "argv",
                        ["platform_comparison.py", "WV", "spmv"])
    module.main()
    out = capsys.readouterr().out
    assert "graphr" in out
    assert "speedup vs CPU" in out


def test_every_example_has_docstring_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert '"""' in source.split("\n", 3)[-1] or \
            source.lstrip().startswith(('"""', "#!")), path
        assert "def main()" in source, f"{path} lacks main()"
        assert '__name__ == "__main__"' in source, path
