"""Unit tests for the Graph facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph


class TestConstruction:
    def test_from_edges(self, tiny_graph):
        assert tiny_graph.num_vertices == 8
        assert tiny_graph.num_edges == 25

    def test_rectangular_rejected(self):
        coo = COOMatrix((2, 3), [0], [2], [1.0])
        with pytest.raises(GraphFormatError):
            Graph(adjacency=coo)

    def test_bad_scale_factor(self):
        coo = COOMatrix.empty((2, 2))
        with pytest.raises(GraphFormatError):
            Graph(adjacency=coo, scale_factor=0.0)

    def test_from_edges_infers_square(self):
        g = Graph.from_edges([(0, 5)])
        assert g.num_vertices == 6

    def test_density(self, tiny_graph):
        assert tiny_graph.density == pytest.approx(25 / 64)


class TestDegrees:
    def test_out_degrees(self, tiny_graph):
        deg = tiny_graph.out_degrees()
        assert deg.sum() == tiny_graph.num_edges
        assert deg[0] == 2

    def test_in_degrees(self, tiny_graph):
        deg = tiny_graph.in_degrees()
        assert deg.sum() == tiny_graph.num_edges

    def test_degrees_of_reversed(self, tiny_graph):
        rev = tiny_graph.reversed()
        assert np.array_equal(rev.out_degrees(), tiny_graph.in_degrees())
        assert np.array_equal(rev.in_degrees(), tiny_graph.out_degrees())


class TestViews:
    def test_csr_cached(self, tiny_graph):
        assert tiny_graph.csr() is tiny_graph.csr()

    def test_csc_cached(self, tiny_graph):
        assert tiny_graph.csc() is tiny_graph.csc()

    def test_csr_matches_adjacency(self, tiny_graph, rng):
        x = rng.random(8)
        assert np.allclose(tiny_graph.csr().matvec(x),
                           tiny_graph.adjacency.matvec(x))

    def test_reversed_round_trip(self, tiny_graph):
        double = tiny_graph.reversed().reversed()
        assert np.array_equal(double.adjacency.to_dense(),
                              tiny_graph.adjacency.to_dense())

    def test_unit_weights(self, small_weighted_graph):
        unit = small_weighted_graph.with_unit_weights()
        assert not unit.weighted
        assert np.all(np.asarray(unit.adjacency.values) == 1.0)
        assert unit.num_edges == small_weighted_graph.num_edges

    def test_deduplicated(self):
        g = Graph.from_edges([(0, 1), (0, 1), (1, 0)], num_vertices=2)
        d = g.deduplicated()
        assert d.num_edges == 2
        assert d.adjacency.to_dense()[0, 1] == 2.0

    def test_repr(self, tiny_graph):
        text = repr(tiny_graph)
        assert "figure5" in text and "|V|=8" in text
