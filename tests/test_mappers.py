"""Direct unit tests for the MAC and add-op iteration mappers, with
hand-computed expectations on tiny graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.spmv import SpMVProgram
from repro.algorithms.sssp import INFINITY, SSSPProgram
from repro.core.addop_mapper import run_addop_iteration
from repro.core.config import GraphRConfig
from repro.core.engine import GraphEngine
from repro.core.mac_mapper import run_mac_iteration
from repro.core.streaming import SubgraphStreamer
from repro.graph.graph import Graph
from repro.reram.fixed_point import FixedPointFormat


@pytest.fixture
def cfg():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=1)


def _mac_engine(cfg, frac=15):
    fmt = FixedPointFormat(16, frac)
    return GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)


def _min_engine(cfg):
    fmt = FixedPointFormat(16, 0)
    return GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)


class TestMACMapper:
    def test_single_edge_propagation(self, cfg):
        # 0 -> 1 with outdeg(0)=1: rank flows damped to vertex 1.
        graph = Graph.from_edges([(0, 1)], num_vertices=4)
        program = PageRankProgram(damping=0.8)
        streamer = SubgraphStreamer(graph, cfg)
        props = program.initial_properties(graph)      # 0.25 each
        coeffs = program.crossbar_coefficient(graph)   # [0.8]
        new_props, changed, events = run_mac_iteration(
            streamer, _mac_engine(cfg), program, graph, props, coeffs)
        teleport = 0.2 / 4
        assert new_props[1] == pytest.approx(teleport + 0.8 * 0.25,
                                             abs=1e-3)
        assert new_props[0] == pytest.approx(teleport, abs=1e-3)
        assert events.edges == 1
        assert events.subgraphs == 1

    def test_spmv_star(self, cfg):
        # Star 0 -> {1,2,3}: each gets x0 * (1/3).
        graph = Graph.from_edges([(0, 1), (0, 2), (0, 3)],
                                 num_vertices=4)
        program = SpMVProgram()
        streamer = SubgraphStreamer(graph, cfg)
        props = np.array([3.0, 0.0, 0.0, 0.0])
        coeffs = program.crossbar_coefficient(graph)
        engine = _mac_engine(cfg, frac=8)
        new_props, _, _ = run_mac_iteration(
            streamer, engine, program, graph, props, coeffs)
        assert np.allclose(new_props[1:], 1.0, atol=1e-2)

    def test_events_scanned_edges_set(self, cfg, small_graph):
        program = SpMVProgram()
        streamer = SubgraphStreamer(small_graph, cfg)
        props = program.initial_properties(small_graph)
        coeffs = program.crossbar_coefficient(small_graph)
        _, _, events = run_mac_iteration(
            streamer, _mac_engine(cfg, frac=8), program, small_graph,
            props, coeffs)
        assert events.scanned_edges == small_graph.num_edges
        assert events.edges == small_graph.num_edges


class TestAddOpMapper:
    def test_single_relaxation(self, cfg):
        # 0 -> 1 weight 5, dist(0)=0: one iteration gives dist(1)=5.
        graph = Graph.from_edges([(0, 1, 5.0)], num_vertices=4,
                                 weighted=True)
        program = SSSPProgram(source=0)
        streamer = SubgraphStreamer(graph, cfg)
        props = program.initial_properties(graph)
        coeffs = program.crossbar_coefficient(graph)
        frontier = props != INFINITY
        new_props, changed, events = run_addop_iteration(
            streamer, _min_engine(cfg), program, graph, props, coeffs,
            frontier=frontier)
        assert new_props[1] == 5.0
        assert changed[1]
        assert not changed[0]
        assert events.addop

    def test_two_paths_take_minimum(self, cfg):
        # 0 -> 2 direct (10) vs precomputed shorter label at 2.
        graph = Graph.from_edges([(0, 2, 10.0)], num_vertices=4,
                                 weighted=True)
        program = SSSPProgram(source=0)
        streamer = SubgraphStreamer(graph, cfg)
        props = np.array([0.0, INFINITY, 4.0, INFINITY])
        coeffs = program.crossbar_coefficient(graph)
        frontier = np.array([True, False, False, False])
        new_props, changed, _ = run_addop_iteration(
            streamer, _min_engine(cfg), program, graph, props, coeffs,
            frontier=frontier)
        # 0 + 10 = 10 loses against the existing 4.
        assert new_props[2] == 4.0
        assert not changed[2]

    def test_inactive_sources_do_nothing(self, cfg):
        graph = Graph.from_edges([(0, 1, 2.0), (2, 3, 1.0)],
                                 num_vertices=4, weighted=True)
        program = SSSPProgram(source=0)
        streamer = SubgraphStreamer(graph, cfg)
        props = np.array([0.0, INFINITY, 0.0, INFINITY])
        coeffs = program.crossbar_coefficient(graph)
        frontier = np.array([True, False, False, False])
        new_props, changed, events = run_addop_iteration(
            streamer, _min_engine(cfg), program, graph, props, coeffs,
            frontier=frontier)
        assert new_props[1] == 2.0
        assert new_props[3] == INFINITY   # source 2 inactive
        assert events.edges == 1

    def test_empty_frontier_is_identity(self, cfg, small_weighted_graph):
        program = SSSPProgram(source=0)
        streamer = SubgraphStreamer(small_weighted_graph, cfg)
        props = program.initial_properties(small_weighted_graph)
        coeffs = program.crossbar_coefficient(small_weighted_graph)
        frontier = np.zeros(small_weighted_graph.num_vertices,
                            dtype=bool)
        new_props, changed, events = run_addop_iteration(
            streamer, _min_engine(cfg), program, small_weighted_graph,
            props, coeffs, frontier=frontier)
        assert np.array_equal(new_props, props)
        assert not changed.any()
        assert events.edges == 0
