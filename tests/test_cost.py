"""Unit tests for the GraphR cost model."""

from __future__ import annotations

import pytest

from repro.core.config import GraphRConfig
from repro.core.cost import EDGE_BYTES, CostModel, IterationEvents
from repro.hw.energy import EnergyLedger
from repro.hw.timing import LatencyModel


@pytest.fixture
def cfg():
    return GraphRConfig(mode="analytic")


@pytest.fixture
def model(cfg):
    return CostModel(cfg)


class TestParallelism:
    def test_mac_uses_all_logical_crossbars(self, model, cfg):
        assert model.presentation_parallelism(addop=False) \
            == cfg.logical_crossbars

    def test_addop_has_one_over_s_parallelism(self, model, cfg):
        """Section 4: C*N*G vs C*C*N*G parallel degrees."""
        assert model.presentation_parallelism(addop=True) \
            == cfg.logical_crossbars // cfg.crossbar_size


class TestIterationTime:
    def test_zero_events_cost_only_overhead(self, model, cfg):
        assert model.iteration_time_s(IterationEvents()) \
            == pytest.approx(cfg.iteration_overhead_s)

    def test_compute_bound_iteration(self, model, cfg):
        events = IterationEvents(edges=10, scanned_edges=10,
                                 tiles=cfg.logical_crossbars * 4,
                                 presentations=cfg.logical_crossbars * 4)
        reram = cfg.technology.reram
        expected = (4 * reram.write_latency_s + 4 * reram.ge_cycle_s
                    + cfg.iteration_overhead_s)
        assert model.iteration_time_s(events) == pytest.approx(expected)

    def test_fetch_bound_iteration(self, model, cfg):
        events = IterationEvents(edges=1, scanned_edges=100_000_000,
                                 tiles=1, presentations=1)
        expected = (100_000_000 * EDGE_BYTES / cfg.mem_bandwidth_bps
                    + cfg.iteration_overhead_s)
        assert model.iteration_time_s(events) == pytest.approx(expected)

    def test_addop_slower_than_mac_for_same_presentations(self, model):
        mac = IterationEvents(tiles=1000, presentations=1000)
        addop = IterationEvents(tiles=1000, presentations=1000,
                                addop=True)
        assert model.iteration_time_s(addop) > model.iteration_time_s(mac)

    def test_more_tiles_cost_more(self, model):
        few = IterationEvents(tiles=100, presentations=100)
        many = IterationEvents(tiles=10_000, presentations=10_000)
        assert model.iteration_time_s(many) > model.iteration_time_s(few)


class TestCharging:
    def test_charge_populates_ledgers(self, model):
        events = IterationEvents(edges=50, scanned_edges=100, subgraphs=3,
                                 tiles=10, presentations=10,
                                 touched_rows=20, reduce_ops=80,
                                 apply_ops=16)
        energy, latency = EnergyLedger(), LatencyModel()
        seconds = model.charge_iteration(events, energy, latency)
        assert seconds == pytest.approx(model.iteration_time_s(events))
        assert energy.energy_of("crossbar_write") > 0
        assert energy.energy_of("crossbar_read") > 0
        assert energy.energy_of("adc") > 0
        assert energy.energy_of("salu") > 0
        assert energy.energy_of("mem_reram_read") > 0

    def test_mac_writes_charge_nonzero_cells(self, model, cfg):
        events = IterationEvents(edges=100, tiles=10, presentations=10,
                                 touched_rows=40)
        energy = EnergyLedger()
        model.charge_iteration(events, energy, LatencyModel())
        expected = (100 * cfg.slices
                    * cfg.technology.reram.write_energy_j)
        assert energy.energy_of("crossbar_write") == pytest.approx(expected)

    def test_addop_writes_charge_full_rows(self, model, cfg):
        events = IterationEvents(edges=100, tiles=10, presentations=40,
                                 touched_rows=40, addop=True)
        energy = EnergyLedger()
        model.charge_iteration(events, energy, LatencyModel())
        expected = (40 * cfg.crossbar_size * cfg.slices
                    * cfg.technology.reram.write_energy_j)
        assert energy.energy_of("crossbar_write") == pytest.approx(expected)

    def test_explicit_programmed_cells_override(self, model, cfg):
        events = IterationEvents(edges=100, tiles=10, presentations=10,
                                 touched_rows=40, programmed_cells=7)
        energy = EnergyLedger()
        model.charge_iteration(events, energy, LatencyModel())
        expected = 7 * cfg.slices * cfg.technology.reram.write_energy_j
        assert energy.energy_of("crossbar_write") == pytest.approx(expected)

    def test_latency_breakdown_sums_to_total(self, model):
        events = IterationEvents(edges=50, scanned_edges=50, tiles=10,
                                 presentations=10, touched_rows=20,
                                 reduce_ops=80)
        latency = LatencyModel()
        seconds = model.charge_iteration(events, EnergyLedger(), latency)
        assert latency.total_s == pytest.approx(seconds)


class TestEventsMerge:
    def test_merge_accumulates(self):
        a = IterationEvents(edges=1, tiles=2, presentations=3,
                            touched_rows=4, reduce_ops=5, apply_ops=6,
                            subgraphs=7, scanned_edges=8,
                            programmed_cells=9)
        b = IterationEvents(edges=10, tiles=20, presentations=30,
                            touched_rows=40, reduce_ops=50, apply_ops=60,
                            subgraphs=70, scanned_edges=80,
                            programmed_cells=90, addop=True)
        a.merge(b)
        assert (a.edges, a.tiles, a.presentations) == (11, 22, 33)
        assert (a.touched_rows, a.reduce_ops, a.apply_ops) == (44, 55, 66)
        assert (a.subgraphs, a.scanned_edges) == (77, 88)
        assert a.programmed_cells == 99
        assert a.addop
