"""Unit + property tests for BFS and SSSP, with networkx oracles."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import UNREACHABLE, BFSProgram, bfs_reference
from repro.algorithms.sssp import (
    INFINITY,
    SSSPProgram,
    dijkstra_reference,
    sssp_reference,
)
from repro.algorithms.vertex_program import MappingPattern
from repro.errors import GraphFormatError
from repro.graph.generators import chain_graph, rmat, star_graph
from repro.graph.graph import Graph


def _to_networkx(graph, weighted):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for src, dst, w in graph.adjacency:
        g.add_edge(src, dst, weight=w if weighted else 1.0)
    return g


class TestBFSReference:
    def test_chain_levels(self, path_graph):
        result = bfs_reference(path_graph, source=0)
        assert np.array_equal(result.values, np.arange(10.0))

    def test_star_levels(self):
        result = bfs_reference(star_graph(6, center=0), source=0)
        assert result.values[0] == 0
        assert np.all(result.values[1:] == 1)

    def test_unreachable(self):
        graph = Graph.from_edges([(0, 1)], num_vertices=3)
        result = bfs_reference(graph, source=0)
        assert result.values[2] == UNREACHABLE

    def test_matches_networkx(self, small_graph):
        result = bfs_reference(small_graph, source=0)
        lengths = nx.single_source_shortest_path_length(
            _to_networkx(small_graph, weighted=False), 0)
        for v in range(small_graph.num_vertices):
            expected = lengths.get(v, UNREACHABLE)
            assert result.values[v] == expected

    def test_frontier_trace(self, path_graph):
        result = bfs_reference(path_graph, source=0)
        assert result.trace.frontiers is not None
        # 9 productive levels plus the final sink-only frontier.
        assert result.trace.iterations == 10
        # Each chain frontier holds exactly one vertex.
        assert all(f.sum() == 1 for f in result.trace.frontiers)
        assert result.trace.active_edges[-1] == 0

    def test_source_out_of_range(self, path_graph):
        with pytest.raises(GraphFormatError):
            bfs_reference(path_graph, source=99)

    def test_iteration_cap(self, path_graph):
        result = bfs_reference(path_graph, source=0, max_iterations=3)
        assert result.iterations == 3
        assert not result.converged


class TestBFSProgram:
    def test_descriptor(self):
        program = BFSProgram()
        assert program.pattern is MappingPattern.PARALLEL_ADD_OP
        assert program.reduce_op == "min"
        assert program.needs_active_list
        assert program.reduce_identity == UNREACHABLE

    def test_initial_properties(self, path_graph):
        props = BFSProgram(source=3).initial_properties(path_graph)
        assert props[3] == 0.0
        assert np.all(np.delete(props, 3) == UNREACHABLE)

    def test_coefficients_all_one(self, small_graph):
        coeffs = BFSProgram().crossbar_coefficient(small_graph)
        assert np.all(coeffs == 1.0)

    def test_bad_source(self):
        with pytest.raises(GraphFormatError):
            BFSProgram(source=-1)


class TestSSSPReference:
    def test_chain_distances(self, path_graph):
        result = sssp_reference(path_graph, source=0)
        assert np.array_equal(result.values, np.arange(10.0))

    def test_matches_dijkstra(self, small_weighted_graph):
        bf = sssp_reference(small_weighted_graph, source=0)
        dj = dijkstra_reference(small_weighted_graph, source=0)
        assert np.array_equal(bf.values, dj.values)

    def test_matches_networkx(self, small_weighted_graph):
        result = sssp_reference(small_weighted_graph, source=0)
        lengths = nx.single_source_dijkstra_path_length(
            _to_networkx(small_weighted_graph, weighted=True), 0)
        for v in range(small_weighted_graph.num_vertices):
            assert result.values[v] == lengths.get(v, INFINITY)

    def test_negative_weight_rejected(self):
        graph = Graph.from_edges([(0, 1, -1.0)], num_vertices=2)
        with pytest.raises(GraphFormatError):
            sssp_reference(graph, source=0)
        with pytest.raises(GraphFormatError):
            dijkstra_reference(graph, source=0)

    def test_frontier_shrinks_to_empty(self, small_weighted_graph):
        result = sssp_reference(small_weighted_graph, source=0)
        assert result.converged
        assert result.trace.frontiers[0].sum() == 1

    def test_relaxation_invariant(self, small_weighted_graph):
        """No edge can further relax a converged distance vector."""
        result = sssp_reference(small_weighted_graph, source=0)
        dist = result.values
        for src, dst, w in small_weighted_graph.adjacency:
            if dist[src] < INFINITY:
                assert dist[dst] <= dist[src] + w + 1e-9


class TestSSSPProgram:
    def test_descriptor(self):
        program = SSSPProgram()
        assert program.pattern is MappingPattern.PARALLEL_ADD_OP
        assert program.reduce_op == "min"
        assert program.parallelism_degree_exponent == 1

    def test_coefficients_are_weights(self, small_weighted_graph):
        coeffs = SSSPProgram().crossbar_coefficient(small_weighted_graph)
        assert np.array_equal(
            coeffs, np.asarray(small_weighted_graph.adjacency.values))

    def test_negative_weights_rejected(self):
        graph = Graph.from_edges([(0, 1, -2.0)], num_vertices=2)
        with pytest.raises(GraphFormatError):
            SSSPProgram().crossbar_coefficient(graph)

    def test_initial_via_kwargs(self, path_graph):
        props = SSSPProgram().initial_properties(path_graph, source=4)
        assert props[4] == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       edges=st.integers(min_value=5, max_value=150))
def test_property_bellman_ford_equals_dijkstra(seed, edges):
    """Frontier Bellman-Ford and Dijkstra agree on random graphs."""
    graph = rmat(5, edges, seed=seed, weighted=True)
    bf = sssp_reference(graph, source=0)
    dj = dijkstra_reference(graph, source=0)
    assert np.array_equal(bf.values, dj.values)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_bfs_is_unit_weight_sssp(seed):
    """BFS equals SSSP with unit weights (the paper's observation)."""
    graph = rmat(5, 80, seed=seed, weighted=False)
    bfs = bfs_reference(graph, source=0)
    sssp = sssp_reference(graph.with_unit_weights(), source=0)
    reachable = bfs.values < UNREACHABLE
    assert np.array_equal(bfs.values[reachable], sssp.values[reachable])
