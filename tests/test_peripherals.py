"""Unit tests for the GE peripheral chain: DRV, S/H, ADC, S/A, sALU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, DeviceError
from repro.hw.params import ADCParams
from repro.reram.adc import SharedADC
from repro.reram.driver import WordlineDriver
from repro.reram.fixed_point import FixedPointFormat
from repro.reram.salu import REDUCE_OPS, SALU
from repro.reram.sample_hold import SampleHoldArray
from repro.reram.shift_add import ShiftAddUnit


class TestDriver:
    def test_present_quantizes(self):
        drv = WordlineDriver(4, FixedPointFormat(16, 8))
        codes, counts = drv.present(np.array([1.0, 0.0, 0.5, 2.0]))
        assert codes[0] == 256
        assert codes[1] == 0
        assert counts.wordlines_driven == 3
        assert counts.input_bits == 3 * 16

    def test_one_hot(self):
        drv = WordlineDriver(4)
        codes, counts = drv.one_hot(2)
        assert np.array_equal(codes, [0, 0, 1, 0])
        assert counts.wordlines_driven == 1

    def test_one_hot_out_of_range(self):
        with pytest.raises(DeviceError):
            WordlineDriver(4).one_hot(4)

    def test_wrong_length(self):
        with pytest.raises(DeviceError):
            WordlineDriver(4).present(np.ones(3))

    def test_negative_rejected(self):
        with pytest.raises(DeviceError):
            WordlineDriver(2).present(np.array([-1.0, 0.0]))

    def test_zero_lanes_rejected(self):
        with pytest.raises(DeviceError):
            WordlineDriver(0)


class TestSampleHold:
    def test_sample_then_drain(self):
        sh = SampleHoldArray(8)
        sh.sample(np.arange(4.0))
        assert sh.holding
        out = sh.drain()
        assert np.array_equal(out, np.arange(4.0))
        assert not sh.holding
        assert sh.samples_taken == 4

    def test_overwrite_hazard(self):
        sh = SampleHoldArray(8)
        sh.sample(np.ones(2))
        with pytest.raises(DeviceError):
            sh.sample(np.ones(2))

    def test_drain_empty(self):
        with pytest.raises(DeviceError):
            SampleHoldArray(4).drain()

    def test_capacity_exceeded(self):
        with pytest.raises(DeviceError):
            SampleHoldArray(2).sample(np.ones(3))

    def test_zero_capacity(self):
        with pytest.raises(DeviceError):
            SampleHoldArray(0)


class TestADC:
    def test_quantization_grid(self):
        adc = SharedADC(full_scale=255.0)
        out = adc.convert(np.array([0.0, 100.3, 255.0]))
        assert out[0] == 0.0
        assert out[2] == 255.0
        assert abs(out[1] - 100.3) <= 255.0 / 255 / 2 + 1e-9

    def test_clipping(self):
        adc = SharedADC(full_scale=10.0)
        assert adc.convert(np.array([99.0]))[0] == 10.0
        assert adc.convert(np.array([-5.0]))[0] == 0.0

    def test_conversion_counting(self):
        adc = SharedADC()
        adc.convert(np.zeros(7))
        assert adc.conversions == 7

    def test_timing_and_energy(self):
        adc = SharedADC(ADCParams(sample_rate_sps=1e9, power_w=16e-3))
        assert adc.conversion_time_s(64) == pytest.approx(64e-9)
        assert adc.conversion_energy_j(1) == pytest.approx(16e-12)

    def test_paper_sizing_claim(self):
        """One 1.0 GSps ADC converts eight 8-bitline crossbars (64
        values) within a 64 ns GE cycle — Section 3.2."""
        adc = SharedADC()
        assert adc.fits_in_cycle(64, 64e-9)
        assert not adc.fits_in_cycle(65, 64e-9)

    def test_required_rate(self):
        assert SharedADC.required_rate_sps(64, 64e-9) == pytest.approx(1e9)

    def test_invalid_inputs(self):
        with pytest.raises(DeviceError):
            SharedADC(full_scale=0.0)
        with pytest.raises(DeviceError):
            SharedADC().convert(np.zeros((2, 2)))
        with pytest.raises(DeviceError):
            SharedADC().conversion_time_s(-1)
        with pytest.raises(DeviceError):
            SharedADC.required_rate_sps(4, 0.0)


class TestShiftAdd:
    def test_paper_recombination(self):
        """D3<<12 + D2<<8 + D1<<4 + D0 (Section 3.2 Data Format)."""
        sa = ShiftAddUnit(cell_bits=4, num_slices=4)
        slices = [np.array([0xD]), np.array([0xC]), np.array([0xB]),
                  np.array([0xA])]
        assert sa.combine(slices)[0] == 0xABCD
        assert sa.total_bits == 16

    def test_wrong_slice_count(self):
        with pytest.raises(DeviceError):
            ShiftAddUnit(4, 4).combine([np.array([1])] * 3)

    def test_mismatched_shapes(self):
        sa = ShiftAddUnit(4, 2)
        with pytest.raises(DeviceError):
            sa.combine([np.array([1]), np.array([1, 2])])

    def test_combine_counting(self):
        sa = ShiftAddUnit(4, 2)
        sa.combine([np.zeros(5), np.zeros(5)])
        assert sa.combines == 5

    def test_invalid_params(self):
        with pytest.raises(DeviceError):
            ShiftAddUnit(0, 4)


class TestSALU:
    def test_figure15_add(self):
        """Figure 15a: add for PageRank."""
        salu = SALU("add")
        old = np.array([7.0, 2.0, 3.0, 1.0])
        new = np.array([2.0, 4.0, 5.0, 3.0])
        assert np.array_equal(salu.reduce(old, new), [9, 6, 8, 4])

    def test_figure15_min(self):
        """Figure 15b: min for SSSP."""
        salu = SALU("min")
        old = np.array([5.0, 6.0, 4.0, 7.0])
        new = np.array([3.0, 9.0, 4.0, 2.0])
        assert np.array_equal(salu.reduce(old, new), [3, 6, 4, 2])

    def test_max(self):
        salu = SALU("max")
        assert salu.reduce(np.array([1.0]), np.array([2.0]))[0] == 2.0

    def test_reconfigure(self):
        salu = SALU("add")
        salu.configure("min")
        assert salu.op_name == "min"

    def test_unknown_op(self):
        with pytest.raises(ConfigError):
            SALU("xor")

    def test_register_custom_op(self):
        SALU.register("test_sub", np.subtract)
        try:
            salu = SALU("test_sub")
            assert salu.reduce(np.array([5.0]), np.array([2.0]))[0] == 3.0
        finally:
            REDUCE_OPS.pop("test_sub")

    def test_register_invalid(self):
        with pytest.raises(ConfigError):
            SALU.register("", np.add)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            SALU("add").reduce(np.ones(2), np.ones(3))

    def test_op_counting(self):
        salu = SALU("add")
        salu.reduce(np.ones(8), np.ones(8))
        assert salu.ops_performed == 8
