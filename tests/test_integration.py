"""End-to-end integration tests across the whole stack.

These walk the full pipeline — generator -> preprocessing ->
streaming-apply on functional GEs -> results + costs — and cross-check
against the references and across platforms.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    bfs_reference,
    pagerank_reference,
    spmv_reference,
    sssp_reference,
)
from repro.baselines import CPUPlatform, GPUPlatform, PIMPlatform
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.generators import erdos_renyi, rmat
from repro.graph.io import load_binary, save_binary


@pytest.fixture
def cfg():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        max_iterations=80)


class TestFullPipeline:
    @pytest.mark.parametrize("algorithm,kwargs", [
        ("pagerank", {}),
        ("bfs", {"source": 0}),
        ("sssp", {"source": 0}),
        ("spmv", {}),
    ])
    def test_all_algorithms_on_functional_node(self, cfg, algorithm,
                                               kwargs):
        graph = rmat(6, 200, seed=12, weighted=True)
        accel = GraphR(cfg)
        result, stats = accel.run(algorithm, graph, mode="functional",
                                  **kwargs)
        assert stats.seconds > 0
        assert stats.joules > 0
        references = {
            "pagerank": pagerank_reference,
            "bfs": bfs_reference,
            "sssp": sssp_reference,
            "spmv": spmv_reference,
        }
        reference = references[algorithm](graph, **kwargs)
        if algorithm in ("bfs", "sssp"):
            assert np.array_equal(result.values, reference.values)
        else:
            assert np.allclose(result.values, reference.values,
                               rtol=1e-2, atol=0.1)

    def test_persistence_round_trip_preserves_results(self, cfg,
                                                      tmp_path):
        graph = rmat(6, 150, seed=3, weighted=True)
        path = tmp_path / "graph.bin"
        save_binary(graph, path)
        reloaded = load_binary(path)
        accel = GraphR(cfg)
        a, _ = accel.run("sssp", graph, source=0, mode="functional")
        b, _ = accel.run("sssp", reloaded, source=0, mode="functional")
        assert np.array_equal(a.values, b.values)

    def test_block_partitioned_run_matches_single_block(self):
        """Out-of-core blocking must not change results (Section 3.3)."""
        graph = rmat(6, 200, seed=7, weighted=True)
        single = GraphR(GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                     num_ges=2, max_iterations=80))
        blocked = GraphR(GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                      num_ges=2, block_size=16,
                                      max_iterations=80))
        a, _ = single.run("sssp", graph, source=0, mode="functional")
        b, _ = blocked.run("sssp", graph, source=0, mode="functional")
        assert np.array_equal(a.values, b.values)

    def test_blocked_pagerank_matches(self):
        graph = erdos_renyi(48, 300, seed=2)
        single = GraphR(GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                     num_ges=2, max_iterations=60))
        blocked = GraphR(GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                      num_ges=2, block_size=20,
                                      max_iterations=60))
        a, _ = single.run("pagerank", graph, mode="functional")
        b, _ = blocked.run("pagerank", graph, mode="functional")
        assert np.allclose(a.values, b.values, atol=1e-6)


class TestCrossPlatformConsistency:
    def test_all_platforms_compute_identical_values(self):
        """Simulated platforms differ in cost, never in answers."""
        graph = rmat(7, 600, seed=5, weighted=True, name="xplat")
        kwargs = {"source": 0}
        accel = GraphR(GraphRConfig(mode="analytic"))
        g_result, _ = accel.run("sssp", graph, **kwargs)
        for platform in (CPUPlatform(), GPUPlatform(), PIMPlatform()):
            result, stats = platform.run("sssp", graph, **kwargs)
            assert np.array_equal(result.values, g_result.values)
            assert stats.seconds > 0

    def test_graphr_beats_cpu_on_dense_small_graph(self):
        graph = erdos_renyi(128, 4000, seed=8, name="dense")
        accel = GraphR(GraphRConfig(mode="analytic"))
        cpu = CPUPlatform()
        _, g = accel.run("pagerank", graph, max_iterations=10)
        _, c = cpu.run("pagerank", graph, max_iterations=10)
        assert g.seconds < c.seconds
        assert g.joules < c.joules


class TestEnergyAccounting:
    def test_component_breakdown_sums_to_total(self, cfg):
        graph = rmat(6, 200, seed=1, weighted=True)
        accel = GraphR(cfg)
        _, stats = accel.run("sssp", graph, source=0, mode="functional")
        assert sum(stats.energy.breakdown().values()) \
            == pytest.approx(stats.joules)

    def test_latency_breakdown_sums_to_total(self, cfg):
        graph = rmat(6, 200, seed=1, weighted=True)
        accel = GraphR(cfg)
        _, stats = accel.run("sssp", graph, source=0, mode="functional")
        assert stats.latency.total_s == pytest.approx(stats.seconds)

    def test_write_energy_dominates_reads(self, cfg):
        """ReRAM writes are ~3600x costlier than reads per cell; for
        MAC workloads write energy must exceed crossbar read energy."""
        graph = rmat(6, 300, seed=2)
        accel = GraphR(cfg)
        _, stats = accel.run("pagerank", graph, mode="functional")
        assert stats.energy.energy_of("crossbar_write") \
            > stats.energy.energy_of("crossbar_read")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000),
       edges=st.integers(min_value=10, max_value=150))
def test_property_functional_sssp_equals_reference(seed, edges):
    """Device-level SSSP is exact for any random weighted graph."""
    graph = rmat(5, edges, seed=seed, weighted=True)
    cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                       max_iterations=100)
    result, _ = GraphR(cfg).run("sssp", graph, source=0,
                                mode="functional")
    reference = sssp_reference(graph, source=0)
    assert np.array_equal(result.values, reference.values)
