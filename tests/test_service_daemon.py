"""Tests for the simulation-service daemon core.

Covers the acceptance-critical behaviours: bit-identical results to
the batch runtime, content-key dedup under concurrent submission,
cache-served resubmission, priority ordering, restart durability
(running jobs requeue, nothing is lost), and the crash/deterministic
failure split.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.errors import JobError
from repro.hw.stats import RunStats
from repro.runtime import BatchRunner
from repro.runtime import scheduler as scheduler_module
from repro.runtime.job import Job
from repro.service import SimulationService

ENTRIES = [
    {"algorithm": "spmv", "dataset": "WV"},
    {"algorithm": "bfs", "dataset": "WV", "platform": "cpu",
     "run_kwargs": {"source": 0}},
    {"algorithm": "pagerank", "dataset": "WV",
     "run_kwargs": {"max_iterations": 3}},
]


def drain(service: SimulationService, timeout: float = 90.0) -> None:
    """Wait until no job is queued or running."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        counts = service.store.counts()
        if counts["queued"] == 0 and counts["running"] == 0:
            return
        time.sleep(0.05)
    raise AssertionError(f"queue did not drain: "
                         f"{service.store.counts()}")


@pytest.fixture
def service(tmp_path):
    service = SimulationService(tmp_path / "svc" / "jobs.db",
                                workers=2)
    service.start()
    yield service
    service.stop()


class TestEndToEnd:
    def test_submit_executes_and_matches_batch_runner(self, service):
        submissions = service.submit(ENTRIES)
        assert [s["state"] for s in submissions] == ["queued"] * 3
        drain(service)

        jobs = [Job.from_dict(entry) for entry in ENTRIES]
        batch = BatchRunner().run_jobs(jobs)
        for submission, job, expected in zip(submissions, jobs, batch):
            detail = service.job_detail(submission["id"])
            assert detail["state"] == "done"
            assert detail["key"] == job.content_key()
            # identity_dict: the two executions record their own
            # wall-clock traces; the simulated values must match.
            assert RunStats.from_dict(
                detail["stats"]).identity_dict() == \
                expected.stats.identity_dict()

    def test_resubmission_is_served_from_cache(self, service):
        first = service.submit(ENTRIES[:1])
        drain(service)
        second = service.submit(ENTRIES[:1])
        assert second[0]["id"] == first[0]["id"]
        assert second[0]["state"] == "done"
        assert second[0]["from_cache"]
        # Served instantly: nothing went back on the queue.
        assert service.store.counts()["queued"] == 0

    def test_duplicate_entries_in_one_batch_share_one_job(self,
                                                          service):
        submissions = service.submit([ENTRIES[0], dict(ENTRIES[0])])
        assert submissions[0]["id"] == submissions[1]["id"]
        drain(service)
        assert service.cache.stats.stores == 1
        assert service.store.get(submissions[0]["id"]).attempts == 1

    def test_deterministic_failure_fails_fast(self, service):
        submission = service.submit([{
            "algorithm": "sssp", "dataset": "WV",
            "run_kwargs": {"source": 10 ** 9},
        }])[0]
        drain(service)
        detail = service.job_detail(submission["id"])
        assert detail["state"] == "failed"
        assert detail["attempts"] == 1  # JobErrors are never retried
        assert "Traceback" in detail["error"]
        assert service.cache.stats.stores == 0

    def test_defaults_merge_like_jobfiles(self, service):
        submission = service.submit(
            [{"algorithm": "bfs", "dataset": "WV",
              "run_kwargs": {"source": 0}}],
            defaults={"platform": "cpu"})[0]
        drain(service)
        assert service.job_detail(
            submission["id"])["spec"]["platform"] == "cpu"

    def test_invalid_entry_rejects_whole_batch(self, service):
        with pytest.raises(JobError):
            service.submit([ENTRIES[0],
                            {"algorithm": "dfs", "dataset": "WV"}])
        assert len(service.store) == 0

    def test_status_polling_does_not_skew_hit_rate(self, service):
        submission = service.submit(ENTRIES[:1])[0]
        drain(service)
        before = service.metrics()["cache"]
        for _ in range(5):  # a --wait client polling the done job
            assert service.job_detail(
                submission["id"])["stats"] is not None
        after = service.metrics()["cache"]
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_metrics_shape(self, service):
        service.submit(ENTRIES)
        drain(service)
        metrics = service.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["counts"]["done"] == 3
        assert metrics["workers"]["total"] == 2
        assert 0.0 <= metrics["workers"]["utilisation"] <= 1.0
        assert metrics["jobs"]["submitted"] == 3
        assert metrics["jobs"]["per_sec_1m"] > 0
        assert metrics["cache"]["entries"] == 3
        assert metrics["cache"]["total_bytes"] > 0

    def test_metrics_counters_come_from_locked_totals(self, service):
        """``metrics()`` reads completed/failed as one pair via
        ``WorkerSupervisor.totals()`` — never torn between the two
        counter fields."""
        service.submit(ENTRIES)
        drain(service)
        completed, failed = service.supervisor.totals()
        metrics = service.metrics()
        assert metrics["jobs"]["completed"] == completed == 3
        assert metrics["jobs"]["failed"] == failed == 0


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        service = SimulationService(tmp_path / "jobs.db", workers=0)
        service.start()
        try:
            submission = service.submit(ENTRIES[:1])[0]
            assert service.cancel(submission["id"]) is True
            assert service.job_detail(
                submission["id"])["state"] == "cancelled"
            assert service.cancel(submission["id"]) is False
            assert service.cancel("jdeadbeef") is None
        finally:
            service.stop()

    def test_cancelled_job_is_skipped_by_workers(self, tmp_path):
        service = SimulationService(tmp_path / "jobs.db", workers=0)
        service.start()
        submission = service.submit(ENTRIES[:1])[0]
        service.cancel(submission["id"])
        service.supervisor.stop()
        # Restart with workers: the cancelled job must not run.
        service.supervisor.workers = 2
        service.supervisor.start()
        try:
            time.sleep(0.5)
            assert service.job_detail(
                submission["id"])["state"] == "cancelled"
            assert service.cache.stats.stores == 0
        finally:
            service.stop()


class TestPriorities:
    def test_higher_priority_runs_first(self, tmp_path):
        service = SimulationService(tmp_path / "jobs.db", workers=0)
        service.start()
        low = service.submit([ENTRIES[0]], priority=0)[0]
        high = service.submit([ENTRIES[2]], priority=9)[0]
        service.supervisor.stop()
        # One worker drains strictly in priority order.
        service.supervisor.workers = 1
        service.supervisor.start()
        # Re-offer the queue in store order (the daemon does this on
        # start); the priority queue must still run 'high' first.
        for record in service.store.queued_records():
            service.supervisor.enqueue(record)
        try:
            drain(service)
            first = service.job_detail(high["id"])["finished_at"]
            second = service.job_detail(low["id"])["finished_at"]
            assert first <= second
        finally:
            service.stop()


class TestDurability:
    def test_restart_requeues_running_and_keeps_queue(self, tmp_path):
        db = tmp_path / "jobs.db"
        first = SimulationService(db, workers=0)
        first.start()
        submissions = first.submit(ENTRIES)
        # Simulate a daemon killed mid-job: one job claimed (running),
        # the rest still queued, then the process "dies" (no drain).
        assert first.store.claim(submissions[0]["id"])
        first.stop()

        second = SimulationService(db, workers=2)
        requeued = second.start()
        try:
            assert [r.id for r in requeued] == [submissions[0]["id"]]
            drain(second)
            for submission in submissions:
                detail = second.job_detail(submission["id"])
                assert detail["state"] == "done"
                assert detail["stats"] is not None
            # Dedup still holds after the restart: resubmitting is
            # served from cache, not re-executed.
            again = second.submit(ENTRIES)
            assert all(s["from_cache"] for s in again)
            assert [s["id"] for s in again] == \
                [s["id"] for s in submissions]
        finally:
            second.stop()

    def test_results_match_batch_runner_after_restart(self, tmp_path):
        db = tmp_path / "jobs.db"
        first = SimulationService(db, workers=0)
        first.start()
        submission = first.submit([ENTRIES[2]])[0]
        first.stop()

        second = SimulationService(db, workers=1)
        second.start()
        try:
            drain(second)
            expected = BatchRunner().run_jobs(
                [Job.from_dict(ENTRIES[2])])[0]
            assert RunStats.from_dict(
                second.job_detail(submission["id"])["stats"]
            ).identity_dict() == expected.stats.identity_dict()
        finally:
            second.stop()

    def test_pruned_result_is_recomputed_on_resubmit(self, service):
        submission = service.submit(ENTRIES[:1])[0]
        drain(service)
        assert service.cache.prune(0)  # drop every cached result
        again = service.submit(ENTRIES[:1])[0]
        assert not again["from_cache"]
        assert again["state"] == "queued"
        drain(service)
        assert service.job_detail(
            submission["id"])["stats"] is not None


@pytest.mark.skipif(sys.platform != "linux",
                    reason="crash injection relies on fork inheriting "
                           "the monkeypatched module")
class TestWorkerFailures:
    def test_crash_is_retried_on_a_fresh_worker(self, tmp_path,
                                                monkeypatch):
        from test_runtime_scheduler import crashing_execute_payload

        flag = tmp_path / "crashed-once"
        monkeypatch.setattr(
            scheduler_module, "execute_payload",
            crashing_execute_payload("spmv", str(flag)))
        service = SimulationService(tmp_path / "jobs.db", workers=1)
        service.start()
        try:
            submission = service.submit(ENTRIES[:1])[0]
            drain(service)
            detail = service.job_detail(submission["id"])
            assert detail["state"] == "done"
            assert detail["attempts"] == 2  # crashed once, recovered
            assert RunStats.from_dict(
                detail["stats"]).identity_dict() == \
                BatchRunner().run_jobs(
                    [Job.from_dict(ENTRIES[0])]
                )[0].stats.identity_dict()
        finally:
            service.stop()

    def test_crash_budget_exhausts_to_failed(self, tmp_path,
                                             monkeypatch):
        from test_runtime_scheduler import crashing_execute_payload

        monkeypatch.setattr(scheduler_module, "execute_payload",
                            crashing_execute_payload("spmv"))
        service = SimulationService(tmp_path / "jobs.db", workers=1,
                                    max_crash_retries=1)
        service.start()
        try:
            submission = service.submit(ENTRIES[:1])[0]
            drain(service)
            detail = service.job_detail(submission["id"])
            assert detail["state"] == "failed"
            assert detail["attempts"] == 2  # 1 try + 1 retry
            assert "crashed" in detail["error"]
        finally:
            service.stop()

    def test_job_timeout_kills_and_fails(self, tmp_path):
        service = SimulationService(tmp_path / "jobs.db", workers=1,
                                    job_timeout_s=0.01)
        service.start()
        try:
            submission = service.submit([ENTRIES[2]])[0]
            drain(service)
            detail = service.job_detail(submission["id"])
            assert detail["state"] == "failed"
            assert "timed out" in detail["error"]
        finally:
            service.stop()


class TestConcurrentSubmission:
    def test_racing_clients_share_one_execution(self, service):
        entry = {"algorithm": "pagerank", "dataset": "WV",
                 "run_kwargs": {"max_iterations": 2}}
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def client():
            barrier.wait()
            submission = service.submit([entry])[0]
            with lock:
                outcomes.append(submission)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        drain(service)

        ids = {submission["id"] for submission in outcomes}
        assert len(ids) == 1
        record = service.store.get(ids.pop())
        assert record.state == "done"
        assert record.attempts == 1          # exactly one execution
        assert service.cache.stats.stores == 1
