"""Tests for the small-world and preferential-attachment generators,
variation wiring in the engine, selective scan, and calibration bands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.vertex_program import MappingPattern
from repro.core.config import GraphRConfig
from repro.core.engine import GraphEngine
from repro.core.streaming import SubgraphStreamer
from repro.errors import ConfigError, GraphFormatError
from repro.experiments.calibration import BANDS, PAPER, Band
from repro.graph.generators import barabasi_albert, rmat, watts_strogatz


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        g = watts_strogatz(20, 2, rewire_p=0.0, seed=1)
        assert g.num_edges == 40
        deg = g.out_degrees()
        assert np.all(deg == 2)

    def test_rewiring_changes_structure(self):
        regular = watts_strogatz(50, 3, 0.0, seed=2)
        rewired = watts_strogatz(50, 3, 0.8, seed=2)
        assert regular.adjacency != rewired.adjacency

    def test_no_self_loops(self):
        g = watts_strogatz(40, 4, 0.5, seed=3)
        assert not np.any(np.asarray(g.adjacency.rows)
                          == np.asarray(g.adjacency.cols))

    def test_deterministic(self):
        a = watts_strogatz(30, 2, 0.3, seed=9)
        b = watts_strogatz(30, 2, 0.3, seed=9)
        assert a.adjacency == b.adjacency

    def test_invalid_params(self):
        with pytest.raises(GraphFormatError):
            watts_strogatz(0, 2, 0.1)
        with pytest.raises(GraphFormatError):
            watts_strogatz(10, 10, 0.1)
        with pytest.raises(GraphFormatError):
            watts_strogatz(10, 2, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, 3, seed=1)
        assert g.num_edges == (100 - 3) * 3

    def test_hub_formation(self):
        g = barabasi_albert(300, 2, seed=4)
        in_deg = g.in_degrees()
        assert in_deg.max() > 10 * max(1.0, np.median(in_deg))

    def test_targets_are_distinct_per_vertex(self):
        g = barabasi_albert(50, 3, seed=2)
        src = np.asarray(g.adjacency.rows)
        dst = np.asarray(g.adjacency.cols)
        for v in range(3, 50):
            targets = dst[src == v]
            assert np.unique(targets).size == targets.size

    def test_invalid_params(self):
        with pytest.raises(GraphFormatError):
            barabasi_albert(3, 3)
        with pytest.raises(GraphFormatError):
            barabasi_albert(10, 0)


class TestEngineVariation:
    def test_variation_perturbs_mac(self, rng):
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                           num_ges=2)
        varied = cfg.with_overrides(programming_sigma=0.2)
        tile = rng.random((4, 8)) * 0.1
        inputs = rng.random(4) * 0.1
        clean, _ = GraphEngine(cfg).mac_tile(tile, inputs)
        noisy, _ = GraphEngine(varied).mac_tile(tile, inputs)
        assert not np.allclose(clean, noisy)

    def test_ir_drop_reduces_sums(self, rng):
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                           num_ges=2)
        dropped = cfg.with_overrides(ir_drop_alpha=0.3)
        tile = np.full((4, 8), 0.1)
        inputs = np.full(4, 0.1)
        clean, _ = GraphEngine(cfg).mac_tile(tile, inputs)
        lossy, _ = GraphEngine(dropped).mac_tile(tile, inputs)
        assert np.all(lossy <= clean + 1e-12)
        assert lossy.sum() < clean.sum()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GraphRConfig(programming_sigma=-1.0)
        with pytest.raises(ConfigError):
            GraphRConfig(ir_drop_alpha=1.0)


class TestSelectiveScan:
    def test_selective_scan_reduces_scanned_edges(self):
        graph = rmat(7, 800, seed=6)
        base = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                            num_ges=2, block_size=32)
        on = SubgraphStreamer(graph,
                              base.with_overrides(
                                  selective_block_scan=True))
        off = SubgraphStreamer(graph, base)
        frontier = np.zeros(graph.num_vertices, dtype=bool)
        frontier[0] = True
        e_on = on.iteration_events(MappingPattern.PARALLEL_ADD_OP,
                                   frontier=frontier)
        e_off = off.iteration_events(MappingPattern.PARALLEL_ADD_OP,
                                     frontier=frontier)
        assert e_on.scanned_edges < e_off.scanned_edges
        assert e_on.edges == e_off.edges

    def test_full_frontier_scans_everything(self):
        graph = rmat(6, 300, seed=6)
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                           num_ges=2, block_size=16,
                           selective_block_scan=True)
        streamer = SubgraphStreamer(graph, cfg)
        frontier = np.ones(graph.num_vertices, dtype=bool)
        events = streamer.iteration_events(
            MappingPattern.PARALLEL_ADD_OP, frontier=frontier)
        assert events.scanned_edges == graph.num_edges


class TestCalibrationConstants:
    def test_paper_numbers_present(self):
        assert PAPER.speedup_geomean_vs_cpu == 16.01
        assert PAPER.energy_max_vs_cpu == 217.88
        assert PAPER.speedup_vs_pim_high == 4.12

    def test_bands_contain_paper_values(self):
        assert BANDS["speedup_geomean_vs_cpu"].contains(
            PAPER.speedup_geomean_vs_cpu)
        assert BANDS["energy_geomean_vs_cpu"].contains(
            PAPER.energy_geomean_vs_cpu)
        assert BANDS["speedup_vs_gpu"].contains(PAPER.speedup_vs_gpu_low)
        assert BANDS["speedup_vs_pim"].contains(PAPER.speedup_vs_pim_high)

    def test_band_logic(self):
        band = Band(1.0, 2.0)
        assert band.contains(1.5)
        assert not band.contains(0.5)
        assert not band.contains(2.5)
