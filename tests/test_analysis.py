"""Tests for the graph analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.analysis import (
    degree_histogram,
    reachable_fraction,
    summarize,
    tile_occupancy,
)
from repro.graph.generators import chain_graph, complete_graph, rmat
from repro.graph.graph import Graph
from repro.graph.partition import SubgraphGrid


class TestSummary:
    def test_basic_counts(self, tiny_graph):
        summary = summarize(tiny_graph)
        assert summary.num_vertices == 8
        assert summary.num_edges == 25
        assert summary.self_loops == 1  # (7, 7)
        assert summary.isolated_vertices == 0
        assert summary.mean_degree == pytest.approx(25 / 8)

    def test_isolated_vertices(self):
        graph = Graph.from_edges([(0, 1)], num_vertices=4)
        assert summarize(graph).isolated_vertices == 2

    def test_describe_renders(self, tiny_graph):
        text = summarize(tiny_graph).describe()
        assert "vertices" in text and "figure5" in text


class TestDegreeHistogram:
    def test_counts_cover_all_nonzero_vertices(self, small_graph):
        hist = degree_histogram(small_graph, "out")
        nonzero = int((small_graph.out_degrees() > 0).sum())
        assert hist["counts"].sum() == nonzero

    def test_in_direction(self, small_graph):
        hist = degree_histogram(small_graph, "in")
        nonzero = int((small_graph.in_degrees() > 0).sum())
        assert hist["counts"].sum() == nonzero

    def test_bad_direction(self, small_graph):
        with pytest.raises(GraphFormatError):
            degree_histogram(small_graph, "sideways")

    def test_bad_bins(self, small_graph):
        with pytest.raises(GraphFormatError):
            degree_histogram(small_graph, bins=0)


class TestReachability:
    def test_chain_fully_reachable(self):
        assert reachable_fraction(chain_graph(10), source=0) == 1.0

    def test_chain_from_middle(self):
        assert reachable_fraction(chain_graph(10), source=5) == 0.5

    def test_complete(self):
        assert reachable_fraction(complete_graph(6)) == 1.0


class TestTileOccupancy:
    def test_dense_graph_fills_tiles(self):
        graph = complete_graph(16)
        grid = SubgraphGrid(block_size=16, crossbar_size=4,
                            crossbars_per_ge=2, num_ges=2)
        occ = tile_occupancy(graph, grid)
        assert occ["nonempty_fraction"] == 1.0
        assert occ["edges_per_nonempty_tile"] > 10

    def test_sparser_graph_lower_occupancy(self):
        grid = SubgraphGrid(block_size=32, crossbar_size=4,
                            crossbars_per_ge=2, num_ges=1)
        dense = rmat(5, 600, seed=1)
        sparse = rmat(5, 60, seed=1)
        occ_dense = tile_occupancy(dense, grid)
        occ_sparse = tile_occupancy(sparse, grid)
        assert occ_sparse["nonempty_fraction"] \
            < occ_dense["nonempty_fraction"]


class TestCrossbarFaults:
    def test_inject_and_count(self):
        from repro.reram.crossbar import Crossbar
        xb = Crossbar(8, 8, seed=2)
        faulty = xb.inject_stuck_faults(0.25, seed=3)
        assert faulty == xb.faulty_cells
        assert 0 < faulty < 64

    def test_stuck_off_ignores_programming(self):
        from repro.reram.crossbar import Crossbar
        xb = Crossbar(4, 4, seed=2)
        xb.inject_stuck_faults(1.0, stuck_at="off", seed=1)
        xb.program(np.full((4, 4), 7))
        assert np.all(xb.levels == 0)

    def test_stuck_on_reads_max(self):
        from repro.reram.crossbar import Crossbar
        xb = Crossbar(4, 4, seed=2)
        xb.inject_stuck_faults(1.0, stuck_at="on", seed=1)
        xb.program(np.zeros((4, 4), dtype=int))
        assert np.all(xb.levels == xb.max_level)

    def test_partial_faults_partially_programmable(self):
        from repro.reram.crossbar import Crossbar
        xb = Crossbar(8, 8, seed=5)
        xb.inject_stuck_faults(0.3, seed=7)
        xb.program(np.full((8, 8), 9))
        healthy = 64 - xb.faulty_cells
        assert int((xb.levels == 9).sum()) == healthy

    def test_invalid_fraction(self):
        from repro.errors import DeviceError
        from repro.reram.crossbar import Crossbar
        with pytest.raises(DeviceError):
            Crossbar(4, 4).inject_stuck_faults(1.5)
        with pytest.raises(DeviceError):
            Crossbar(4, 4).inject_stuck_faults(0.5, stuck_at="sideways")
