"""Partitioned-execution equivalence: block-streamed out-of-core and
multi-node runs against the in-memory single node.

The contracts under test:

* out-of-core runs are **bit-identical** to in-memory runs — values,
  seconds and the compute-side energy/latency ledgers — in both
  analytic and functional modes, with and without active lists, while
  holding at most one block's edges in memory;
* multi-node runs produce bit-identical values and identical
  event-linear energy *counts* (timing legitimately differs: nodes
  overlap and exchange properties);
* the deployment spec participates in the runtime's content keys and
  executes through the batch runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.multinode import MultiNodeConfig, MultiNodeGraphR
from repro.core.outofcore import OutOfCoreRunner, prepare_on_disk
from repro.core.partitioned import DeploymentSpec
from repro.errors import ConfigError, JobError
from repro.graph.generators import rmat
from repro.runtime import BatchRunner, Job

#: Small node so the 128-vertex fixture spans many subgraphs.
CONFIG = dict(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
              block_size=16)


@pytest.fixture(scope="module")
def graph():
    # 128 vertices / block 16 -> 8 blocks per side (64 block files).
    return rmat(7, 900, seed=19, weighted=True, name="part")


@pytest.fixture(scope="module")
def analytic_disk(graph, tmp_path_factory):
    directory = tmp_path_factory.mktemp("blocks-analytic")
    prepare_on_disk(graph, directory, GraphRConfig(mode="analytic",
                                                   **CONFIG))
    return directory


def compute_energy(stats, exclude=("disk", "internode_links")):
    return {k: v for k, v in stats.energy.breakdown().items()
            if k not in exclude}


class TestOutOfCoreAnalyticEquivalence:
    """Streamed kernels == reference on the same preprocessed input."""

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("pagerank", {"max_iterations": 5}),
        ("spmv", {}),
        ("sssp", {"source": 0}),
        ("bfs", {"source": 0}),
        ("wcc", {}),
        ("kcore", {"k": 3}),
        ("sswp", {"source": 0}),
        ("ppr", {"source": 0, "max_iterations": 5}),
    ])
    def test_bit_identical_to_in_memory(self, graph, analytic_disk,
                                        algorithm, kwargs):
        config = GraphRConfig(mode="analytic", **CONFIG)
        runner = OutOfCoreRunner(analytic_disk, config)
        ooc_result, ooc_stats = runner.run(algorithm, **kwargs)
        # The deployment input is the preprocessed (ordered) edge list;
        # the in-memory comparison run consumes the same input.
        in_memory, mem_stats = GraphR(config).run(
            algorithm, runner.load_graph(), **kwargs)
        assert np.array_equal(ooc_result.values, in_memory.values)
        assert ooc_result.iterations == in_memory.iterations
        assert ooc_stats.seconds == mem_stats.seconds
        assert ooc_stats.iterations == mem_stats.iterations
        assert compute_energy(ooc_stats) == compute_energy(mem_stats)
        assert dict(ooc_stats.latency.breakdown()) \
            == dict(mem_stats.latency.breakdown())

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("sssp", {"source": 0}),
        ("bfs", {"source": 0}),
        ("sswp", {"source": 0}),
        ("kcore", {"k": 3}),
    ])
    def test_min_algorithms_match_original_order_too(self, graph,
                                                     analytic_disk,
                                                     algorithm, kwargs):
        """min/max-reduction is order-independent (and k-core's unit
        sums are exact integers), so streamed values also equal the
        reference on the *unordered* original graph."""
        config = GraphRConfig(mode="analytic", **CONFIG)
        runner = OutOfCoreRunner(analytic_disk, config)
        ooc_result, _ = runner.run(algorithm, **kwargs)
        in_memory, _ = GraphR(config).run(algorithm, graph, **kwargs)
        assert np.array_equal(ooc_result.values, in_memory.values)


class TestOutOfCoreFunctionalEquivalence:
    """Partitioned tile stream == whole-graph tile stream."""

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("pagerank", {"max_iterations": 5}),
        ("spmv", {}),
        ("sssp", {"source": 0}),
        ("bfs", {"source": 0}),
        ("kcore", {"k": 3}),
        ("sswp", {"source": 0}),
        ("ppr", {"source": 0, "max_iterations": 5}),
    ])
    def test_bit_identical_to_in_memory(self, graph, tmp_path,
                                        algorithm, kwargs):
        config = GraphRConfig(mode="functional", **CONFIG)
        prepare_on_disk(graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        ooc_result, ooc_stats = runner.run(algorithm, **kwargs)
        in_memory, mem_stats = GraphR(config).run(algorithm, graph,
                                                  **kwargs)
        assert np.array_equal(ooc_result.values, in_memory.values)
        assert ooc_stats.seconds == mem_stats.seconds
        assert ooc_stats.iterations == mem_stats.iterations
        assert compute_energy(ooc_stats) == compute_energy(mem_stats)

    def test_noise_and_variation_share_rng_stream(self, graph,
                                                  tmp_path):
        """Blocks stream tiles in the global order, so the engine's
        noise/variation draws line up exactly with an in-memory run."""
        config = GraphRConfig(mode="functional", noise_sigma=0.02,
                              programming_sigma=0.05, seed=3, **CONFIG)
        prepare_on_disk(graph, tmp_path, config)
        ooc_result, _ = OutOfCoreRunner(tmp_path, config).run(
            "pagerank", max_iterations=4)
        in_memory, _ = GraphR(config).run("pagerank", graph,
                                          max_iterations=4)
        assert np.array_equal(ooc_result.values, in_memory.values)


class TestResidency:
    """The out-of-core promise: O(block) residency, not O(graph)."""

    def test_at_least_eight_blocks_per_side(self, analytic_disk):
        runner = OutOfCoreRunner(analytic_disk,
                                 GraphRConfig(mode="analytic", **CONFIG))
        assert runner.manifest.blocks_per_side >= 8

    @pytest.mark.parametrize("mode", ["analytic", "functional"])
    def test_peak_residency_is_one_block(self, graph, analytic_disk,
                                         mode):
        config = GraphRConfig(mode=mode, **CONFIG)
        runner = OutOfCoreRunner(analytic_disk, config)
        _, stats = runner.run("pagerank", max_iterations=3)
        peak = stats.extra["peak_edge_residency"]
        # At most two blocks live at once (the consumer still holds
        # block k while k+1 loads).
        assert 0 < peak <= 2 * stats.extra["max_block_edges"]
        # O(block), not O(graph): far below the whole edge list.
        assert peak < graph.num_edges / 4

    def test_counter_tracks_streaming(self, analytic_disk):
        runner = OutOfCoreRunner(analytic_disk,
                                 GraphRConfig(mode="analytic", **CONFIG))
        seen = 0
        for partition in runner.iter_partitions():
            assert runner._resident_edges == partition.graph.num_edges
            seen += partition.graph.num_edges
        del partition
        assert runner._resident_edges == 0
        assert seen == runner.manifest.num_edges

    def test_counter_exposes_hoarding_consumers(self, analytic_disk):
        """The counter tracks garbage collection, so retaining blocks
        (the pre-fix full reassembly) shows up as O(graph) residency."""
        runner = OutOfCoreRunner(analytic_disk,
                                 GraphRConfig(mode="analytic", **CONFIG))
        hoard = list(runner.iter_partitions())
        assert runner._resident_edges == runner.manifest.num_edges
        del hoard
        assert runner._resident_edges == 0


class TestSinkFrontierPass:
    """Regression: a pass whose frontier holds only sinks (zero active
    edges) charges nothing on the single node — partitioned runs must
    mirror that early return, not bill a sequential scan."""

    @pytest.fixture
    def sink_graph(self):
        from repro.graph.graph import Graph
        # BFS from 0 ends with frontier {5}; vertex 5 has no out-edges.
        return Graph.from_edges([(0, 1), (0, 2), (2, 5)],
                                num_vertices=32, name="sinky")

    def test_out_of_core_matches_in_memory(self, sink_graph, tmp_path):
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, block_size=8, mode="analytic")
        prepare_on_disk(sink_graph, tmp_path, config)
        runner = OutOfCoreRunner(tmp_path, config)
        ooc_result, ooc_stats = runner.run("bfs", source=0)
        in_memory, mem_stats = GraphR(config).run("bfs", sink_graph,
                                                  source=0)
        assert np.array_equal(ooc_result.values, in_memory.values)
        assert ooc_stats.seconds == mem_stats.seconds
        assert compute_energy(ooc_stats) == compute_energy(mem_stats)

    def test_multi_node_matches_in_memory(self, sink_graph):
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=2, block_size=8, mode="analytic")
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4,
                                                  node=config))
        _, clu_stats = cluster.run("bfs", sink_graph, source=0)
        _, mem_stats = GraphR(config).run("bfs", sink_graph, source=0)
        assert dict(clu_stats.energy.counts()) \
            == dict(mem_stats.energy.counts())


class TestMultiNodeEquivalence:
    """Block-aligned stripes: cluster work == single-node work."""

    @pytest.mark.parametrize("mode,algorithm,kwargs", [
        ("analytic", "pagerank", {"max_iterations": 5}),
        ("analytic", "sssp", {"source": 0}),
        ("analytic", "kcore", {"k": 3}),
        ("analytic", "sswp", {"source": 0}),
        ("analytic", "ppr", {"source": 0, "max_iterations": 5}),
        ("functional", "pagerank", {"max_iterations": 5}),
        ("functional", "sssp", {"source": 0}),
        ("functional", "bfs", {"source": 0}),
        ("functional", "kcore", {"k": 3}),
        ("functional", "sswp", {"source": 0}),
        ("functional", "ppr", {"source": 0, "max_iterations": 5}),
    ])
    def test_values_and_event_counts_match_single_node(self, graph,
                                                       mode, algorithm,
                                                       kwargs):
        node_cfg = GraphRConfig(mode=mode, **CONFIG)
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4,
                                                  node=node_cfg))
        clu_result, clu_stats = cluster.run(algorithm, graph, **kwargs)
        mem_result, mem_stats = GraphR(node_cfg).run(algorithm, graph,
                                                     **kwargs)
        assert np.array_equal(clu_result.values, mem_result.values)
        assert clu_stats.iterations == mem_stats.iterations
        # Event-linear energy counts sum exactly across disjoint
        # stripes (joules can differ in the last ulp from charge
        # grouping; static ADC burn legitimately differs per node).
        assert dict(clu_stats.energy.counts()) \
            == dict(mem_stats.energy.counts())
        assert clu_stats.extra["mode"] == f"multinode-{mode}"

    def test_stripes_align_to_block_columns(self, graph):
        cluster = MultiNodeGraphR(MultiNodeConfig(
            num_nodes=4, node=GraphRConfig(mode="analytic", **CONFIG)))
        for lo, hi in cluster._stripes(graph):
            assert lo % CONFIG["block_size"] == 0
        assert cluster._stripes(graph)[-1][1] == graph.num_vertices

    def test_unaligned_stripes_still_split_evenly(self, graph):
        """Without a block size the vertex split stays linspace."""
        cluster = MultiNodeGraphR(MultiNodeConfig(
            num_nodes=3, node=GraphRConfig(mode="analytic")))
        stripes = cluster._stripes(graph)
        assert stripes[0][0] == 0
        assert stripes[-1][1] == graph.num_vertices
        widths = [hi - lo for lo, hi in stripes]
        assert max(widths) - min(widths) <= 1


class TestMultiNodeCFFeatureCount:
    """Regression: CF must charge the feature count it computes with
    (pre-fix, the cost path read the default-constructed program)."""

    def test_feature_count_scales_cluster_work(self):
        graph = rmat(6, 400, seed=5, name="cf-grid")
        cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=2))
        _, few = cluster.run("cf", graph, features=4, epochs=1)
        _, many = cluster.run("cf", graph, features=16, epochs=1)
        # 4x the features = 4x the presentations (hence conversions)
        # per pass; pre-fix both runs charged the registry default.
        assert many.energy.counts()["adc"] \
            == 4 * few.energy.counts()["adc"]


class TestDeploymentSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            DeploymentSpec(kind="quantum")

    def test_round_trip(self):
        spec = DeploymentSpec(kind="multi-node", num_nodes=8,
                              link_bandwidth_bps=32e9)
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            DeploymentSpec.from_dict({"kind": "single", "nodes": 2})

    def test_single_spec_is_the_default_key(self):
        plain = Job(algorithm="pagerank", dataset="WV")
        single = Job(algorithm="pagerank", dataset="WV",
                     deployment=DeploymentSpec(kind="single"))
        assert plain.content_key() == single.content_key()

    def test_deployment_changes_content_key(self):
        plain = Job(algorithm="pagerank", dataset="WV")
        ooc = Job(algorithm="pagerank", dataset="WV",
                  deployment=DeploymentSpec(kind="out-of-core"))
        two = Job(algorithm="pagerank", dataset="WV",
                  deployment=DeploymentSpec(kind="multi-node",
                                            num_nodes=2))
        four = Job(algorithm="pagerank", dataset="WV",
                   deployment=DeploymentSpec(kind="multi-node",
                                             num_nodes=4))
        keys = {plain.content_key(), ooc.content_key(),
                two.content_key(), four.content_key()}
        assert len(keys) == 4

    def test_jobfile_entry_round_trip(self):
        job = Job(algorithm="pagerank", dataset="WV",
                  deployment=DeploymentSpec(kind="multi-node",
                                            num_nodes=2))
        assert Job.from_dict(job.to_dict()) == job

    def test_baseline_platform_rejects_deployment(self):
        with pytest.raises(JobError):
            Job(algorithm="bfs", dataset="WV", platform="cpu",
                deployment=DeploymentSpec(kind="out-of-core"))


class TestDeploymentExecution:
    """Deployment jobs run end to end through the batch runtime."""

    def test_batch_runner_fans_deployment_grid(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path)
        config = GraphRConfig(mode="analytic", block_size=2048)
        jobs = [
            runner.make_job("pagerank", "WV", max_iterations=3),
            runner.make_job("pagerank", "WV", config=config,
                            deployment=DeploymentSpec(kind="out-of-core"),
                            max_iterations=3),
            runner.make_job("pagerank", "WV",
                            deployment=DeploymentSpec(kind="multi-node",
                                                      num_nodes=2),
                            max_iterations=3),
        ]
        results = runner.run_jobs(jobs)
        assert all(result.ok for result in results)
        single, ooc, multi = (result.unwrap() for result in results)
        assert ooc.extra["deployment"] == "out-of-core"
        assert ooc.extra["peak_edge_residency"] \
            <= 2 * ooc.extra["max_block_edges"]
        assert multi.extra["num_nodes"] == 2
        assert single.iterations == ooc.iterations == multi.iterations
        # Warm rerun answers every deployment from the cache.
        rerun = runner.run_jobs(jobs)
        assert all(result.from_cache for result in rerun)
