"""Batched functional engine: bit-equivalence with the per-tile path.

The batched path (vectorised scatter + one einsum per ``(B, S, S)``
stack) and the per-tile reference loop must produce *bit-identical*
results and event counts — across mapping patterns, batch sizes,
frontiers, and with noise/variation enabled.  This file also carries
the regression tests for the correctness bugs the batching work
exposed: duplicate-edge loss in the MAC scatter and correlated
noise/variation RNG streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import get_program
from repro.algorithms.spmv import SpMVProgram
from repro.algorithms.sssp import INFINITY, SSSPProgram
from repro.core.addop_mapper import run_addop_iteration
from repro.core.config import GraphRConfig
from repro.core.controller import Controller
from repro.core.engine import GraphEngine
from repro.core.mac_mapper import run_mac_iteration
from repro.core.streaming import SubgraphStreamer
from repro.graph.generators import erdos_renyi, rmat
from repro.graph.graph import Graph
from repro.reram.fixed_point import FixedPointFormat

BATCH_SIZES = (1, 3, 64, 10_000)

ALGORITHMS = [
    ("pagerank", {}),
    ("spmv", {}),
    ("bfs", {"source": 0}),
    ("sssp", {"source": 0}),
    ("wcc", {}),
    ("kcore", {"k": 3}),
    ("sswp", {"source": 0}),
    ("ppr", {"source": 0}),
]

NONIDEALITIES = [
    {},                                             # clean
    {"noise_sigma": 0.5},                           # read noise
    {"programming_sigma": 0.08, "ir_drop_alpha": 0.1},   # variation
    {"noise_sigma": 0.5, "programming_sigma": 0.08},     # both
]


def _config(batch_size, **overrides):
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        max_iterations=40,
                        functional_batch_size=batch_size, **overrides)


def _run(graph, algorithm, kwargs, batch_size, **overrides):
    program = get_program(algorithm, **kwargs)
    controller = Controller(_config(batch_size, **overrides), graph,
                            program)
    return controller.run_functional(**kwargs)


class TestControllerEquivalence:
    @pytest.mark.parametrize("algorithm,kwargs", ALGORITHMS)
    @pytest.mark.parametrize("overrides", NONIDEALITIES,
                             ids=["clean", "noise", "variation", "both"])
    def test_batched_matches_per_tile(self, algorithm, kwargs,
                                      overrides):
        graph = rmat(6, 200, seed=12, weighted=True)
        reference, ref_stats = _run(graph, algorithm, kwargs, 0,
                                    **overrides)
        for batch_size in BATCH_SIZES:
            result, stats = _run(graph, algorithm, kwargs, batch_size,
                                 **overrides)
            assert np.array_equal(result.values, reference.values), \
                f"values diverge at batch_size={batch_size}"
            assert result.iterations == reference.iterations
            assert stats.to_dict() == ref_stats.to_dict(), \
                f"stats diverge at batch_size={batch_size}"

    def test_blocked_graph_equivalence(self):
        graph = erdos_renyi(48, 300, seed=2)
        a, sa = _run(graph, "pagerank", {}, 0, block_size=16)
        b, sb = _run(graph, "pagerank", {}, 7, block_size=16)
        assert np.array_equal(a.values, b.values)
        assert sa.to_dict() == sb.to_dict()


class TestMapperEquivalence:
    @pytest.fixture
    def cfg(self):
        return _config(8)

    def test_frontier_restricted_addop_batches(self, cfg,
                                               small_weighted_graph):
        """Partial frontiers must restrict batched add-op work exactly
        like the per-tile loop's active-list filtering."""
        graph = small_weighted_graph
        program = SSSPProgram(source=0)
        streamer = SubgraphStreamer(graph, cfg)
        fmt = FixedPointFormat(16, 0)
        coeffs = program.crossbar_coefficient(graph)
        rng = np.random.default_rng(3)
        props = rng.integers(0, 40, graph.num_vertices).astype(float)
        props[rng.random(graph.num_vertices) < 0.5] = INFINITY
        frontier = props != INFINITY
        outs = []
        for batch_size in (0, 1, 5, 1000):
            engine = GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)
            outs.append(run_addop_iteration(
                streamer, engine, program, graph, props, coeffs,
                frontier=frontier, batch_size=batch_size))
        for new_props, changed, events in outs[1:]:
            assert np.array_equal(new_props, outs[0][0])
            assert np.array_equal(changed, outs[0][1])
            assert events == outs[0][2]

    def test_mac_iteration_events_match(self, cfg, small_graph):
        program = SpMVProgram()
        streamer = SubgraphStreamer(small_graph, cfg)
        fmt = FixedPointFormat(16, 8)
        props = program.initial_properties(small_graph)
        coeffs = program.crossbar_coefficient(small_graph)
        per_tile = run_mac_iteration(
            streamer, GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt),
            program, small_graph, props, coeffs, batch_size=0)
        batched = run_mac_iteration(
            streamer, GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt),
            program, small_graph, props, coeffs, batch_size=6)
        assert np.array_equal(per_tile[0], batched[0])
        assert per_tile[2] == batched[2]
        assert batched[2].edges == small_graph.num_edges


class TestDuplicateEdges:
    """Regression: the MAC scatter used to keep only the last value of
    duplicate coordinates, while :meth:`COOMatrix.to_dense` (and the
    references) sum them."""

    @pytest.fixture
    def multigraph(self):
        edges = [(0, 1, 0.25), (0, 1, 0.5), (0, 1, 0.125),  # triplicate
                 (1, 2, 0.5), (1, 2, 0.25),                 # duplicate
                 (2, 3, 0.5), (3, 0, 0.5)]
        return Graph.from_edges(edges, num_vertices=4, weighted=True,
                                name="multi")

    @pytest.mark.parametrize("batch_size", [0, 2, 64])
    def test_functional_spmv_matches_dense(self, multigraph, batch_size):
        cfg = _config(batch_size)
        program = SpMVProgram()
        streamer = SubgraphStreamer(multigraph, cfg)
        fmt = FixedPointFormat(16, 8)
        engine = GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)
        x = np.array([1.0, 2.0, 4.0, 8.0])
        coeffs = program.crossbar_coefficient(multigraph)
        new_props, _, _ = run_mac_iteration(
            streamer, engine, program, multigraph, x, coeffs,
            batch_size=batch_size)
        dense = np.zeros((4, 4))
        np.add.at(dense, (np.asarray(multigraph.adjacency.rows),
                          np.asarray(multigraph.adjacency.cols)), coeffs)
        expected = program.source_input(x, multigraph) @ dense
        # Exact up to the 16.8 fixed-point quantisation of each cell.
        assert np.allclose(new_props, expected, atol=8 * 2.0 ** -9)
        # The triplicated cell carries the *sum* of its coefficients
        # ((0.25 + 0.5 + 0.125) / outdeg 3); last-write-wins would have
        # kept only 0.125 / 3.
        assert new_props[1] == pytest.approx(0.875 / 3, abs=2.0 ** -8)

    @pytest.mark.parametrize("batch_size", [0, 2])
    def test_addop_duplicates_take_minimum(self, multigraph, batch_size):
        """Parallel relaxations through parallel edges keep the
        lightest weight — matching the reference's edge-wise relax."""
        cfg = _config(batch_size)
        program = SSSPProgram(source=0)
        streamer = SubgraphStreamer(multigraph, cfg)
        fmt = FixedPointFormat(16, 0)
        engine = GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)
        edges = [(0, 1, 9.0), (0, 1, 2.0), (0, 1, 5.0)]
        g = Graph.from_edges(edges, num_vertices=4, weighted=True)
        streamer = SubgraphStreamer(g, cfg)
        props = np.array([0.0, INFINITY, INFINITY, INFINITY])
        coeffs = program.crossbar_coefficient(g)
        new_props, _, _ = run_addop_iteration(
            streamer, engine, program, g, props, coeffs,
            frontier=props != INFINITY, batch_size=batch_size)
        assert new_props[1] == 2.0


class TestRNGIndependence:
    """Regression: read noise and programming variation used to share
    the raw config seed, correlating their draws."""

    def test_noise_and_variation_streams_differ(self):
        cfg = _config(8, noise_sigma=1.0, programming_sigma=0.1)
        engine = GraphEngine(cfg)
        # The variation field must not equal what a generator seeded
        # with the raw config seed would draw (the old coupling).
        coupled = np.random.default_rng(cfg.seed).lognormal(
            mean=0.0, sigma=cfg.programming_sigma, size=(4, 4))
        actual = engine._variation.effective_gain((4, 4))
        assert not np.allclose(actual, coupled)
        # And the noise stream must not replay the raw-seed stream.
        raw = np.random.default_rng(cfg.seed).normal(0.0, 1.0, 16)
        fresh = GraphEngine(cfg)._rng.normal(0.0, 1.0, 16)
        assert not np.allclose(fresh, raw)

    def test_engine_runs_stay_deterministic(self, small_graph):
        results = []
        for _ in range(2):
            result, stats = _run(small_graph, "pagerank", {}, 16,
                                 noise_sigma=0.3,
                                 programming_sigma=0.05)
            results.append((result.values, stats.to_dict()))
        assert np.array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]


class TestBatchScatter:
    def test_batches_reconstruct_adjacency(self, small_graph):
        """Scattered batches, reassembled, equal the dense adjacency."""
        cfg = _config(16)
        streamer = SubgraphStreamer(small_graph, cfg)
        coeffs = np.asarray(small_graph.adjacency.values, dtype=float)
        dense = np.zeros((streamer.ordering.padded_vertices,
                          streamer.ordering.padded_vertices))
        total_edges = 0
        total_subgraphs = 0
        for batch in streamer.iter_tile_batches(coeffs, 16):
            for i in range(batch.count):
                r = int(batch.row_bases[i])
                c = int(batch.col_bases[i])
                s = cfg.crossbar_size
                dense[r:r + s, c:c + s] += batch.dense[i]
            total_edges += batch.edges
            total_subgraphs += batch.subgraph_starts
        n = small_graph.num_vertices
        assert np.array_equal(dense[:n, :n],
                              small_graph.adjacency.to_dense())
        assert total_edges == small_graph.num_edges
        assert total_subgraphs == streamer.num_nonempty_subgraphs

    def test_frontier_batches_match_filtered_graph(self,
                                                   small_weighted_graph):
        cfg = _config(8)
        graph = small_weighted_graph
        streamer = SubgraphStreamer(graph, cfg)
        coeffs = np.asarray(graph.adjacency.values, dtype=float)
        frontier = np.zeros(graph.num_vertices, dtype=bool)
        frontier[:graph.num_vertices // 3] = True
        dense = np.zeros((streamer.ordering.padded_vertices,
                          streamer.ordering.padded_vertices))
        for batch in streamer.iter_tile_batches(coeffs, 8,
                                                frontier=frontier):
            for i in range(batch.count):
                r = int(batch.row_bases[i])
                c = int(batch.col_bases[i])
                s = cfg.crossbar_size
                dense[r:r + s, c:c + s] += batch.dense[i]
        rows = np.asarray(graph.adjacency.rows)
        keep = frontier[rows]
        expected = np.zeros_like(dense)
        np.add.at(expected, (rows[keep],
                             np.asarray(graph.adjacency.cols)[keep]),
                  coeffs[keep])
        assert np.array_equal(dense, expected)

    def test_empty_frontier_yields_nothing(self, small_graph):
        cfg = _config(8)
        streamer = SubgraphStreamer(small_graph, cfg)
        coeffs = np.ones(small_graph.num_edges)
        frontier = np.zeros(small_graph.num_vertices, dtype=bool)
        assert list(streamer.iter_tile_batches(coeffs, 8,
                                               frontier=frontier)) == []

    def test_bad_batch_size_rejected(self, small_graph):
        from repro.errors import PartitionError
        streamer = SubgraphStreamer(small_graph, _config(8))
        with pytest.raises(PartitionError):
            next(streamer.iter_tile_batches(
                np.ones(small_graph.num_edges), 0))
