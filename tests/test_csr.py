"""Unit tests for the CSR/CSC compressed formats (Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.csr import CSCMatrix, CSRMatrix


class TestCSRConversion:
    def test_figure4_example(self, sparse_matrix):
        csr = CSRMatrix.from_coo(sparse_matrix)
        # Figure 4c: rowptr = [0, 2, 3, 4, 6]
        assert np.array_equal(csr.indptr, [0, 2, 3, 4, 6])
        assert np.array_equal(csr.indices, [2, 3, 2, 0, 1, 3])
        assert np.array_equal(csr.values, [3, 8, 7, 1, 4, 2])

    def test_round_trip(self, sparse_matrix):
        back = CSRMatrix.from_coo(sparse_matrix).to_coo()
        assert np.array_equal(back.to_dense(), sparse_matrix.to_dense())

    def test_dense_matches(self, sparse_matrix):
        csr = CSRMatrix.from_coo(sparse_matrix)
        assert np.array_equal(csr.to_dense(), sparse_matrix.to_dense())

    def test_row_access(self, sparse_matrix):
        csr = CSRMatrix.from_coo(sparse_matrix)
        cols, vals = csr.row(0)
        assert np.array_equal(cols, [2, 3])
        assert np.array_equal(vals, [3, 8])

    def test_empty_row(self):
        coo = COOMatrix((3, 3), [0], [1], [5.0])
        csr = CSRMatrix.from_coo(coo)
        cols, vals = csr.row(1)
        assert cols.size == 0 and vals.size == 0

    def test_row_out_of_range(self, sparse_matrix):
        csr = CSRMatrix.from_coo(sparse_matrix)
        with pytest.raises(GraphFormatError):
            csr.row(4)

    def test_matvec(self, sparse_matrix, rng):
        csr = CSRMatrix.from_coo(sparse_matrix)
        x = rng.random(4)
        assert np.allclose(csr.matvec(x), sparse_matrix.to_dense() @ x)

    def test_matvec_bad_length(self, sparse_matrix):
        csr = CSRMatrix.from_coo(sparse_matrix)
        with pytest.raises(GraphFormatError):
            csr.matvec(np.ones(3))

    def test_nnz(self, sparse_matrix):
        assert CSRMatrix.from_coo(sparse_matrix).nnz == 6

    def test_repr(self, sparse_matrix):
        assert "CSRMatrix" in repr(CSRMatrix.from_coo(sparse_matrix))


class TestCSCConversion:
    def test_figure4_example(self, sparse_matrix):
        csc = CSCMatrix.from_coo(sparse_matrix)
        # Figure 4b: colptr = [0, 1, 2, 4, 6]
        assert np.array_equal(csc.indptr, [0, 1, 2, 4, 6])
        assert np.array_equal(csc.indices, [2, 3, 0, 1, 0, 3])
        assert np.array_equal(csc.values, [1, 4, 3, 7, 8, 2])

    def test_round_trip(self, sparse_matrix):
        back = CSCMatrix.from_coo(sparse_matrix).to_coo()
        assert np.array_equal(back.to_dense(), sparse_matrix.to_dense())

    def test_col_access(self, sparse_matrix):
        csc = CSCMatrix.from_coo(sparse_matrix)
        rows, vals = csc.col(2)
        assert np.array_equal(rows, [0, 1])
        assert np.array_equal(vals, [3, 7])

    def test_matvec(self, sparse_matrix, rng):
        csc = CSCMatrix.from_coo(sparse_matrix)
        x = rng.random(4)
        assert np.allclose(csc.matvec(x), sparse_matrix.to_dense() @ x)

    def test_dense_matches(self, sparse_matrix):
        csc = CSCMatrix.from_coo(sparse_matrix)
        assert np.array_equal(csc.to_dense(), sparse_matrix.to_dense())

    def test_col_out_of_range(self, sparse_matrix):
        with pytest.raises(GraphFormatError):
            CSCMatrix.from_coo(sparse_matrix).col(-1)


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]),
                      np.array([1.0]))

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix((2, 2), np.array([1, 1, 1]), np.array([0]),
                      np.array([1.0]))

    def test_indptr_decreasing(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0]),
                      np.array([1.0]))

    def test_indices_values_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([0]),
                      np.array([1.0, 2.0]))

    def test_minor_index_out_of_range(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([5]),
                      np.array([1.0]))

    def test_negative_shape(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix((-2, 2), np.array([0]), np.array([]), np.array([]))

    def test_readonly_views(self, sparse_matrix):
        csr = CSRMatrix.from_coo(sparse_matrix)
        with pytest.raises(ValueError):
            csr.indptr[0] = 7
        with pytest.raises(ValueError):
            csr.values[0] = 7.0


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_csr_csc_agree_on_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n, m, nnz = 17, 23, 60
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, m, nnz)
        vals = rng.random(nnz)
        coo = COOMatrix((n, m), rows, cols, vals)
        x = rng.random(m)
        expected = coo.to_dense() @ x
        assert np.allclose(CSRMatrix.from_coo(coo).matvec(x), expected)
        assert np.allclose(CSCMatrix.from_coo(coo).matvec(x), expected)
