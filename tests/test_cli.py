"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank", "WV"])
        assert args.platform == "graphr"
        # None means "no explicit budget": pagerank/ppr fall back to
        # 20, frontier algorithms run to convergence.
        assert args.iterations is None

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "sssp", "AZ", "--platform", "cpu", "--source", "5"])
        assert args.platform == "cpu"
        assert args.source == 5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "dfs", "WV"])

    def test_run_choices_track_the_registry(self):
        """Regression: the choices were hardcoded, so registry
        additions silently never surfaced on the CLI."""
        from repro.algorithms.registry import list_algorithms
        run_action = None
        for action in build_parser()._subparsers._group_actions:
            run_action = action.choices["run"]._actions
        choices = next(a.choices for a in run_action
                       if a.dest == "algorithm")
        assert tuple(choices) == list_algorithms()

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WikiVote" in out and "Netflix" in out

    def test_tables(self, capsys):
        assert main(["tables", "2"]) == 0
        out = capsys.readouterr().out
        assert "processEdge" in out

    def test_run_graphr(self, capsys):
        assert main(["run", "spmv", "WV"]) == 0
        out = capsys.readouterr().out
        assert "[graphr] spmv on WV" in out
        assert "crossbar_write" in out

    def test_run_cpu_platform(self, capsys):
        assert main(["run", "bfs", "WV", "--platform", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "[cpu] bfs on WV" in out

    def test_run_pagerank_iterations(self, capsys):
        assert main(["run", "pagerank", "WV", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 iterations" in out

    def test_explicit_iterations_bound_frontier_algorithms(self,
                                                           capsys):
        """Regression: --iterations used to be silently dropped for
        every algorithm except pagerank/ppr."""
        for algorithm in ("sswp", "kcore"):
            assert main(["run", algorithm, "WV",
                         "--iterations", "2", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["iterations"] == 2, algorithm

    def test_default_runs_frontier_algorithms_to_convergence(self,
                                                             capsys):
        assert main(["run", "sswp", "WV", "--json"]) == 0
        bounded = json.loads(capsys.readouterr().out)
        assert bounded["iterations"] > 2

    def test_run_multi_node_deployment(self, capsys):
        assert main(["run", "pagerank", "WV", "--iterations", "3",
                     "--deployment", "multi-node",
                     "--num-nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "[graphr-multinode] pagerank on WV" in out

    def test_run_out_of_core_deployment(self, capsys):
        assert main(["run", "sssp", "WV", "--deployment", "out-of-core",
                     "--block-size", "2048", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["extra"]["deployment"] == "out-of-core"
        assert 0 < payload["extra"]["peak_edge_residency"] \
            <= 2 * payload["extra"]["max_block_edges"]
        assert payload["extra"]["blocks"] == 16


class TestRuntimeCommands:
    def test_run_json(self, capsys):
        assert main(["run", "spmv", "WV", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "graphr"
        assert payload["seconds"] > 0
        assert "crossbar_write" in payload["energy_breakdown"]

    def test_run_cached(self, capsys, tmp_path):
        args = ["run", "spmv", "WV", "--json",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second == first

    def test_datasets_json(self, capsys):
        assert main(["datasets", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["code"] for entry in payload} == \
            {"WV", "SD", "AZ", "WG", "LJ", "OK", "NF"}

    def test_batch_command(self, capsys, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({
            "jobs": [
                {"algorithm": "spmv", "dataset": "WV"},
                {"algorithm": "bfs", "dataset": "WV", "platform": "cpu",
                 "run_kwargs": {"source": 0}},
            ],
        }))
        cache = tmp_path / "cache"
        argv = ["batch", str(jobfile), "--cache-dir", str(cache),
                "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert all(r["ok"] for r in payload["results"])
        assert payload["cache"]["stores"] == 2

        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(r["from_cache"] for r in payload["results"])
        assert payload["cache"]["hits"] == 2

    def test_batch_reports_failures(self, capsys, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps(
            [{"algorithm": "sssp", "dataset": "WV",
              "run_kwargs": {"source": 10 ** 9}}]))
        assert main(["batch", str(jobfile)]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out

    def test_bad_jobfile_is_an_error_exit(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCacheCommands:
    def warm(self, tmp_path):
        cache = tmp_path / "cache"
        assert main(["run", "spmv", "WV", "--cache-dir", str(cache),
                     "--json"]) == 0
        return cache

    def test_cache_stats(self, capsys, tmp_path):
        cache = self.warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["total_bytes"] > 0
        assert payload["oldest"]["key"] == payload["newest"]["key"]

    def test_cache_prune(self, capsys, tmp_path):
        cache = self.warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["evicted"]) == 1
        assert payload["remaining_bytes"] == 0
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_cache_stats_and_prune_cover_shards(self, capsys, tmp_path):
        """An out-of-core run leaves a prepared shard directory; stats
        must report it and prune --max-bytes 0 must reclaim it."""
        cache = tmp_path / "cache"
        assert main(["run", "pagerank", "WV", "--iterations", "2",
                     "--deployment", "out-of-core",
                     "--block-size", "2048",
                     "--cache-dir", str(cache), "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["shard_count"] == 1
        assert payload["shard_bytes"] > 0
        assert payload["total_bytes"] == \
            payload["result_bytes"] + payload["shard_bytes"]
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "0", "--json"]) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["remaining_bytes"] == 0
        kinds = {entry["kind"] for entry in pruned["evicted"]}
        assert kinds == {"result", "shard"}
        # The cache directory is left truly empty, shards/ included.
        assert list(cache.iterdir()) == []


class TestServiceCLI:
    """Parser coverage plus one live serve/submit/status/result loop
    (the HTTP server runs in-thread; the daemon's workers are real
    processes)."""

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8750
        assert args.workers == 2
        assert args.db == ".repro-service/jobs.db"

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "jobs.json", "--wait", "--priority", "3",
             "--url", "http://127.0.0.1:9999"])
        assert args.wait and args.priority == 3
        assert args.url == "http://127.0.0.1:9999"

    def test_unreachable_service_is_an_error_exit(self, capsys,
                                                  tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps(
            [{"algorithm": "spmv", "dataset": "WV"}]))
        assert main(["submit", str(jobfile),
                     "--url", "http://127.0.0.1:1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_status_result_against_live_service(self, capsys,
                                                       tmp_path):
        from repro.service import SimulationService, serve_in_thread

        service = SimulationService(tmp_path / "svc" / "jobs.db",
                                    workers=2)
        service.start()
        server = serve_in_thread(service)
        try:
            jobfile = tmp_path / "jobs.json"
            jobfile.write_text(json.dumps({
                "jobs": [
                    {"algorithm": "spmv", "dataset": "WV"},
                    {"algorithm": "bfs", "dataset": "WV",
                     "platform": "cpu",
                     "run_kwargs": {"source": 0}},
                ],
            }))
            argv = ["submit", str(jobfile), "--url", server.url,
                    "--wait", "--json"]
            assert main(argv) == 0
            details = json.loads(capsys.readouterr().out)["jobs"]
            assert [d["state"] for d in details] == ["done", "done"]

            # Bit-identical to the batch runtime on the same job file.
            cache = tmp_path / "batch-cache"
            assert main(["batch", str(jobfile), "--cache-dir",
                         str(cache), "--json"]) == 0
            batch = json.loads(capsys.readouterr().out)["results"]
            from repro.hw.stats import RunStats
            for via_service, via_batch in zip(details, batch):
                # identity_dict: each execution carries its own
                # wall-clock trace; the simulated values must match.
                assert RunStats.from_dict(
                    via_service["stats"]).identity_dict() == \
                    RunStats.from_dict(
                        via_batch["stats"]).identity_dict()

            # A warm resubmit is served from cache.
            assert main(argv) == 0
            details = json.loads(capsys.readouterr().out)["jobs"]
            assert all(d["from_cache"] for d in details)

            assert main(["status", "--url", server.url,
                         "--json"]) == 0
            listing = json.loads(capsys.readouterr().out)["jobs"]
            assert len(listing) == 2

            job_id = details[0]["id"]
            assert main(["status", job_id, "--url", server.url]) == 0
            assert "done" in capsys.readouterr().out
            assert main(["result", job_id, "--url", server.url,
                         "--json"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats == details[0]["stats"]
        finally:
            server.shutdown()
            service.stop()
