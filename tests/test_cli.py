"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank", "WV"])
        assert args.platform == "graphr"
        assert args.iterations == 20

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "sssp", "AZ", "--platform", "cpu", "--source", "5"])
        assert args.platform == "cpu"
        assert args.source == 5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "dfs", "WV"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WikiVote" in out and "Netflix" in out

    def test_tables(self, capsys):
        assert main(["tables", "2"]) == 0
        out = capsys.readouterr().out
        assert "processEdge" in out

    def test_run_graphr(self, capsys):
        assert main(["run", "spmv", "WV"]) == 0
        out = capsys.readouterr().out
        assert "[graphr] spmv on WV" in out
        assert "crossbar_write" in out

    def test_run_cpu_platform(self, capsys):
        assert main(["run", "bfs", "WV", "--platform", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "[cpu] bfs on WV" in out

    def test_run_pagerank_iterations(self, capsys):
        assert main(["run", "pagerank", "WV", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 iterations" in out

    def test_run_multi_node_deployment(self, capsys):
        assert main(["run", "pagerank", "WV", "--iterations", "3",
                     "--deployment", "multi-node",
                     "--num-nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "[graphr-multinode] pagerank on WV" in out

    def test_run_out_of_core_deployment(self, capsys):
        assert main(["run", "sssp", "WV", "--deployment", "out-of-core",
                     "--block-size", "2048", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["extra"]["deployment"] == "out-of-core"
        assert 0 < payload["extra"]["peak_edge_residency"] \
            <= 2 * payload["extra"]["max_block_edges"]
        assert payload["extra"]["blocks"] == 16


class TestRuntimeCommands:
    def test_run_json(self, capsys):
        assert main(["run", "spmv", "WV", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "graphr"
        assert payload["seconds"] > 0
        assert "crossbar_write" in payload["energy_breakdown"]

    def test_run_cached(self, capsys, tmp_path):
        args = ["run", "spmv", "WV", "--json",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second == first

    def test_datasets_json(self, capsys):
        assert main(["datasets", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["code"] for entry in payload} == \
            {"WV", "SD", "AZ", "WG", "LJ", "OK", "NF"}

    def test_batch_command(self, capsys, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({
            "jobs": [
                {"algorithm": "spmv", "dataset": "WV"},
                {"algorithm": "bfs", "dataset": "WV", "platform": "cpu",
                 "run_kwargs": {"source": 0}},
            ],
        }))
        cache = tmp_path / "cache"
        argv = ["batch", str(jobfile), "--cache-dir", str(cache),
                "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert all(r["ok"] for r in payload["results"])
        assert payload["cache"]["stores"] == 2

        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(r["from_cache"] for r in payload["results"])
        assert payload["cache"]["hits"] == 2

    def test_batch_reports_failures(self, capsys, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps(
            [{"algorithm": "sssp", "dataset": "WV",
              "run_kwargs": {"source": 10 ** 9}}]))
        assert main(["batch", str(jobfile)]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out

    def test_bad_jobfile_is_an_error_exit(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err
