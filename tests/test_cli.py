"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank", "WV"])
        assert args.platform == "graphr"
        assert args.iterations == 20

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "sssp", "AZ", "--platform", "cpu", "--source", "5"])
        assert args.platform == "cpu"
        assert args.source == 5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "dfs", "WV"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WikiVote" in out and "Netflix" in out

    def test_tables(self, capsys):
        assert main(["tables", "2"]) == 0
        out = capsys.readouterr().out
        assert "processEdge" in out

    def test_run_graphr(self, capsys):
        assert main(["run", "spmv", "WV"]) == 0
        out = capsys.readouterr().out
        assert "[graphr] spmv on WV" in out
        assert "crossbar_write" in out

    def test_run_cpu_platform(self, capsys):
        assert main(["run", "bfs", "WV", "--platform", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "[cpu] bfs on WV" in out

    def test_run_pagerank_iterations(self, capsys):
        assert main(["run", "pagerank", "WV", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 iterations" in out
