"""Unit tests for edge-list persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import rmat
from repro.graph.io import (
    load_binary,
    load_edge_list,
    save_binary,
    save_edge_list,
)


class TestTextFormat:
    def test_round_trip_unweighted(self, tmp_path, small_graph):
        path = tmp_path / "g.txt"
        save_edge_list(small_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == small_graph.num_vertices
        assert np.array_equal(loaded.adjacency.to_dense(),
                              small_graph.adjacency.to_dense())
        assert loaded.name == small_graph.name

    def test_round_trip_weighted(self, tmp_path, small_weighted_graph):
        path = tmp_path / "g.txt"
        save_edge_list(small_weighted_graph, path)
        loaded = load_edge_list(path)
        assert loaded.weighted
        assert np.array_equal(loaded.adjacency.to_dense(),
                              small_weighted_graph.adjacency.to_dense())

    def test_plain_file_without_header(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2 3.5\n\n# comment\n2 0\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.adjacency.to_dense()[1, 2] == 3.5

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, num_vertices=10)
        assert g.num_vertices == 10

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = load_edge_list(path)
        assert g.num_vertices == 0
        assert g.num_edges == 0


class TestBinaryFormat:
    def test_round_trip(self, tmp_path):
        graph = rmat(6, 200, seed=8, weighted=True)
        path = tmp_path / "g.bin"
        save_binary(graph, path)
        loaded = load_binary(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.weighted == graph.weighted
        assert np.array_equal(np.asarray(loaded.adjacency.rows),
                              np.asarray(graph.adjacency.rows))
        assert np.array_equal(np.asarray(loaded.adjacency.values),
                              np.asarray(graph.adjacency.values))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"JUNK" + b"\x00" * 32)
        with pytest.raises(GraphFormatError):
            load_binary(path)

    def test_name_override(self, tmp_path, small_graph):
        path = tmp_path / "g.bin"
        save_binary(small_graph, path)
        assert load_binary(path, name="custom").name == "custom"

    def test_binary_preserves_order(self, tmp_path):
        """Binary persistence must keep the (preprocessed) edge order."""
        graph = rmat(5, 60, seed=2)
        path = tmp_path / "g.bin"
        save_binary(graph, path)
        loaded = load_binary(path)
        assert np.array_equal(np.asarray(loaded.adjacency.cols),
                              np.asarray(graph.adjacency.cols))
