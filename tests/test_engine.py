"""Unit tests for the functional graph engine, including equivalence to
the device-level chain (crossbar + shift-add)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GraphRConfig
from repro.core.engine import GraphEngine
from repro.errors import DeviceError
from repro.reram.crossbar import Crossbar
from repro.reram.fixed_point import FixedPointFormat, bit_slices
from repro.reram.shift_add import ShiftAddUnit


@pytest.fixture
def cfg():
    return GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2,
                        mode="functional")


@pytest.fixture
def engine(cfg):
    return GraphEngine(cfg)


class TestMACTile:
    def test_exact_on_representable_values(self, cfg):
        fmt = FixedPointFormat(16, 8)
        engine = GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)
        tile = np.array([[0.5, 0.25], [1.0, 0.0]])
        inputs = np.array([2.0, 4.0])
        out, events = engine.mac_tile(tile, inputs)
        assert np.allclose(out, inputs @ tile)
        assert events.tiles == 1
        assert events.presentations == 1

    def test_quantization_error_bounded(self, cfg, rng):
        engine = GraphEngine(cfg)
        tile = rng.random((4, 8)) * 0.1
        inputs = rng.random(4) * 0.1
        out, _ = engine.mac_tile(tile, inputs)
        assert np.allclose(out, inputs @ tile, atol=1e-3)

    def test_shape_mismatch(self, engine):
        with pytest.raises(DeviceError):
            engine.mac_tile(np.zeros((4, 4)), np.zeros(3))

    def test_events_count_nonempty_crossbar_tiles(self, cfg):
        engine = GraphEngine(cfg)
        # 4 x 8 tile = two 4x4 crossbar tiles; only the right one used.
        tile = np.zeros((4, 8))
        tile[1, 6] = 0.5
        _, events = engine.mac_tile(tile, np.ones(4))
        assert events.tiles == 1
        assert events.touched_rows == 1

    def test_equivalence_to_device_chain(self, cfg, rng):
        """Tile-level math == bit-sliced crossbars + shift-add."""
        fmt = FixedPointFormat(16, 8)
        engine = GraphEngine(cfg, coeff_fmt=fmt, input_fmt=fmt)
        tile = rng.integers(0, 200, (4, 4)) / 256.0
        inputs = rng.integers(0, 100, 4) / 256.0

        out_engine, _ = engine.mac_tile(tile, inputs)

        # Device chain: four 4-bit slice crossbars, recombined.
        cell_bits = cfg.technology.reram.cell_bits
        codes = fmt.encode(tile)
        input_codes = fmt.encode(inputs).astype(float)
        slices = bit_slices(codes.ravel(), cell_bits, 16)
        outputs = []
        for payload in slices:
            xb = Crossbar(4, 4, params=cfg.technology.reram)
            xb.program(payload.reshape(4, 4))
            out, _ = xb.mvm(input_codes)
            outputs.append(out)
        combined = ShiftAddUnit(cell_bits, 4).combine(outputs)
        device_result = combined * fmt.scale * fmt.scale
        assert np.allclose(out_engine, device_result)


class TestAddOpTile:
    def test_relaxation_semantics(self, cfg):
        engine = GraphEngine(cfg,
                             coeff_fmt=FixedPointFormat(16, 0),
                             input_fmt=FixedPointFormat(16, 0))
        absent = 65535.0
        w = np.full((4, 4), absent)
        w[0, 1] = 5.0
        w[2, 3] = 2.0
        source = np.array([10.0, absent, 1.0, absent])
        out, events = engine.addop_tile(w, source, np.array([0, 2]),
                                        absent)
        assert out[1] == 15.0          # 10 + 5
        assert out[3] == 3.0           # 1 + 2
        assert out[0] == absent
        assert events.presentations == 2

    def test_figure16_example(self, cfg):
        """Figure 16 c3 t=1: W row for i0 is [M, 1, 5, M], dist(i0)=4,
        old dist(v)=[7, 6, M, M] -> [7, 5, 9, M]."""
        engine = GraphEngine(cfg,
                             coeff_fmt=FixedPointFormat(16, 0),
                             input_fmt=FixedPointFormat(16, 0))
        m = 65535.0
        w = np.full((4, 4), m)
        w[0] = [m, 1, 5, m]
        source = np.array([4.0, m, m, m])
        out, _ = engine.addop_tile(w, source, np.array([0]), m)
        candidates = np.minimum(np.array([7.0, 6.0, m, m]), out)
        assert np.array_equal(candidates, [7, 5, 9, m])

    def test_no_active_rows(self, cfg):
        engine = GraphEngine(cfg)
        out, events = engine.addop_tile(np.full((4, 4), 9.0),
                                        np.zeros(4), np.array([]), 9.0)
        assert np.all(out == 9.0)
        assert events.presentations == 0

    def test_saturation_at_absent(self, cfg):
        engine = GraphEngine(cfg,
                             coeff_fmt=FixedPointFormat(16, 0),
                             input_fmt=FixedPointFormat(16, 0))
        absent = 100.0
        w = np.full((2, 2), absent)
        w[0, 0] = 99.0
        out, _ = engine.addop_tile(w, np.array([50.0, absent]),
                                   np.array([0]), absent)
        # 99 + 50 saturates at the absent value, not beyond.
        assert out[0] == absent

    def test_bad_active_row(self, cfg):
        engine = GraphEngine(cfg)
        with pytest.raises(DeviceError):
            engine.addop_tile(np.zeros((2, 2)), np.zeros(2),
                              np.array([5]), 9.0)

    def test_shape_mismatch(self, cfg):
        engine = GraphEngine(cfg)
        with pytest.raises(DeviceError):
            engine.addop_tile(np.zeros((2, 2)), np.zeros(3),
                              np.array([0]), 9.0)


class TestNoise:
    def test_noise_changes_output(self, cfg, rng):
        noisy_cfg = cfg.with_overrides(noise_sigma=2.0)
        tile = rng.random((4, 8)) * 0.1
        inputs = rng.random(4)
        clean, _ = GraphEngine(cfg).mac_tile(tile, inputs)
        noisy, _ = GraphEngine(noisy_cfg).mac_tile(tile, inputs)
        assert not np.array_equal(clean, noisy)

    def test_noise_output_never_negative(self, cfg):
        noisy_cfg = cfg.with_overrides(noise_sigma=100.0)
        engine = GraphEngine(noisy_cfg)
        out, _ = engine.mac_tile(np.zeros((4, 8)), np.zeros(4))
        assert np.all(out >= 0)
