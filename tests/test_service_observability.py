"""Observability behaviours of the simulation service: extended
health, Prometheus exposition, the TTL-memoised cache inventory, and
span trees persisted through the whole submit→done pipeline."""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.obs import metrics
from repro.service import (ServiceClient, SimulationService,
                           serve_in_thread)

ENTRY = {"algorithm": "pagerank", "dataset": "WV",
         "run_kwargs": {"max_iterations": 3}}


def drain(service: SimulationService, timeout: float = 90.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        counts = service.store.counts()
        if counts["queued"] == 0 and counts["running"] == 0:
            return
        time.sleep(0.05)
    raise AssertionError(f"queue did not drain: "
                         f"{service.store.counts()}")


@pytest.fixture
def fresh_registry():
    """Swap in an empty process-global registry for one test.

    The prometheus assertions below check absolute counts; without
    this, metrics accumulated by earlier tests in the same pytest
    process leak into the exposition.
    """
    with metrics.use_registry(metrics.MetricsRegistry()) as registry:
        yield registry


@pytest.fixture
def service(tmp_path, fresh_registry):
    service = SimulationService(tmp_path / "svc" / "jobs.db",
                                workers=1)
    service.start()
    yield service
    service.stop()


@pytest.fixture
def served(tmp_path, fresh_registry):
    service = SimulationService(tmp_path / "svc" / "jobs.db",
                                workers=1)
    service.start()
    server = serve_in_thread(service)
    client = ServiceClient(server.url, poll_interval_s=0.05)
    yield service, server, client
    server.shutdown()
    service.stop()


class TestHealth:
    def test_healthy_state(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["degraded"] is False
        assert health["queue_depth"] == 0
        assert health["workers"] == {"total": 1, "busy": 0}
        assert health["recent_crashes"] == 0
        assert health["uptime_s"] >= 0.0

    def test_queue_depth_reflects_backlog(self, tmp_path):
        service = SimulationService(tmp_path / "jobs.db", workers=0)
        service.start()
        try:
            service.submit([ENTRY])
            assert service.health()["queue_depth"] == 1
        finally:
            service.stop()

    def test_degraded_flips_on_climbing_crashes(self, service):
        supervisor = service.supervisor
        for _ in range(supervisor.degraded_crash_threshold):
            supervisor._note_crash()
        health = service.health()
        assert health["degraded"] is True
        assert health["status"] == "degraded"
        assert health["recent_crashes"] == \
            supervisor.degraded_crash_threshold

    def test_degraded_clears_once_the_window_slides(self, service):
        supervisor = service.supervisor
        supervisor.degraded_window_s = 0.05
        for _ in range(supervisor.degraded_crash_threshold):
            supervisor._note_crash()
        assert supervisor.degraded()
        time.sleep(0.1)
        assert not supervisor.degraded()
        assert service.health()["status"] == "ok"

    def test_http_health_carries_the_detail(self, served):
        service, server, _ = served
        with urllib.request.urlopen(server.url + "/v1/health",
                                    timeout=10) as response:
            payload = json.loads(response.read().decode())
        assert payload["ok"] is True  # pre-existing liveness contract
        assert payload["status"] == "ok"
        assert payload["degraded"] is False
        assert "queue_depth" in payload
        assert payload["workers"]["total"] == 1


class TestPrometheusEndpoint:
    def test_exposition_content_type_and_movement(self, served):
        service, server, client = served
        submissions = client.submit([ENTRY])
        client.wait_for([s["id"] for s in submissions], timeout_s=90)

        url = server.url + "/v1/metrics?format=prometheus"
        with urllib.request.urlopen(url, timeout=10) as response:
            content_type = response.headers["Content-Type"]
            text = response.read().decode()
        assert content_type == \
            "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_jobs_completed_total counter" in text
        assert "repro_jobs_completed_total 1" in text
        # The execution-latency histogram counted the job.
        assert "repro_job_execute_seconds_count 1" in text
        # And the queue-wait histogram was fed from store timestamps.
        assert "repro_scheduler_queue_wait_seconds_count 1" in text

    def test_json_stays_the_default(self, served):
        _, server, _ = served
        with urllib.request.urlopen(server.url + "/v1/metrics",
                                    timeout=10) as response:
            assert response.headers["Content-Type"] == \
                "application/json"
            payload = json.loads(response.read().decode())
        assert "queue_depth" in payload
        assert "cache" in payload

    def test_unknown_format_is_400(self, served):
        import urllib.error

        _, server, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                server.url + "/v1/metrics?format=xml", timeout=10)
        assert err.value.code == 400


class TestInventoryMemo:
    def test_repeated_polls_walk_the_disk_once(self, service,
                                               monkeypatch):
        walks = {"count": 0}
        real_entries = service.cache.entries

        def counting_entries():
            walks["count"] += 1
            return real_entries()

        monkeypatch.setattr(service.cache, "entries",
                            counting_entries)
        for _ in range(10):
            service.metrics()
        assert walks["count"] == 1

    def test_expired_memo_rewalks(self, service, monkeypatch):
        walks = {"count": 0}
        real_entries = service.cache.entries

        def counting_entries():
            walks["count"] += 1
            return real_entries()

        monkeypatch.setattr(service.cache, "entries",
                            counting_entries)
        service.inventory_ttl_s = 0.0
        service.metrics()
        service.metrics()
        assert walks["count"] == 2

    def test_inventory_numbers_are_fresh_after_ttl(self, service):
        service.inventory_ttl_s = 0.0
        before = service.metrics()["cache"]["entries"]
        service.submit([ENTRY])
        drain(service)
        after = service.metrics()["cache"]["entries"]
        assert after == before + 1


class TestPersistedTraces:
    def test_service_job_carries_a_full_span_tree(self, service):
        submission = service.submit([ENTRY])[0]
        drain(service)
        detail = service.job_detail(submission["id"])
        assert detail["state"] == "done"
        trace = detail["stats"]["extra"]["trace"]

        assert trace["name"] == "job"
        assert trace["correlation_id"] == submission["key"][:12]

        names = set()

        def visit(node):
            names.add(node["name"])
            for child in node.get("children", ()):
                visit(child)

        visit(trace)
        # The acceptance bar: at least four distinct phase spans
        # survive the worker pipe, the queue-wait injection and the
        # result cache.
        phases = names & {"queue-wait", "prepare", "attach",
                          "shard-build", "shard-attach",
                          "scan-metadata", "reference", "sweep",
                          "merge", "iteration"}
        assert len(phases) >= 4, names
        assert "queue-wait" in names  # injected from store timestamps
        # queue-wait is the tree's first child: the submit→done story
        # reads in order.
        assert trace["children"][0]["name"] == "queue-wait"

    def test_trace_survives_cache_round_trip(self, service):
        submission = service.submit([ENTRY])[0]
        drain(service)
        first = service.job_detail(submission["id"])["stats"]
        again = service.submit([ENTRY])[0]
        assert again["from_cache"]
        second = service.job_detail(again["id"])["stats"]
        assert second == first
