"""Tests for the cache simulator, its agreement with the analytic miss
model, and the functional GridGraph engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_reference
from repro.algorithms.pagerank import pagerank_reference
from repro.algorithms.sssp import sssp_reference
from repro.baselines.cachesim import (
    CacheSimulator,
    vertex_access_trace,
)
from repro.baselines.gridgraph import GridGraphEngine
from repro.baselines.memory import cache_miss_rate
from repro.errors import ConfigError
from repro.graph.generators import rmat


class TestCacheSimulator:
    def test_repeated_access_hits(self):
        cache = CacheSimulator(1024, line_bytes=64, ways=2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(32)  # same line
        assert cache.stats.hits == 2

    def test_capacity_eviction(self):
        # Direct-mapped, 2 sets: lines 0 and 2 collide in set 0.
        cache = CacheSimulator(128, line_bytes=64, ways=1)
        cache.access(0)          # line 0 -> set 0
        cache.access(128)        # line 2 -> set 0, evicts line 0
        assert not cache.access(0)

    def test_lru_policy(self):
        cache = CacheSimulator(128, line_bytes=64, ways=2)
        # One set of 2 ways? capacity 128 = 64 * 2 -> 1 set, 2 ways.
        cache.access(0)
        cache.access(64)
        cache.access(0)          # refresh line 0
        cache.access(128)        # evicts line 1 (LRU), not line 0
        assert cache.access(0)
        assert not cache.access(64)

    def test_fully_resident_working_set_hits(self):
        cache = CacheSimulator(64 * 1024)
        trace = np.tile(np.arange(0, 32 * 1024, 64), 3)
        cache.run_trace(trace)
        # After the first cold pass everything hits.
        assert cache.stats.miss_rate < 0.4

    def test_reset(self):
        cache = CacheSimulator(1024)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            CacheSimulator(0)
        with pytest.raises(ConfigError):
            CacheSimulator(100, line_bytes=64, ways=3)
        with pytest.raises(ConfigError):
            CacheSimulator(1024).access(-1)

    def test_trace_helper(self):
        trace = vertex_access_trace(np.array([0, 5, 2]),
                                    property_bytes=8)
        assert np.array_equal(trace, [0, 40, 16])
        with pytest.raises(ConfigError):
            vertex_access_trace(np.array([-1]))


class TestMissModelAgreement:
    def test_formula_tracks_simulation_on_graph_trace(self):
        """The closed-form miss estimate must land within 0.25 of the
        measured miss rate on a real power-law destination trace."""
        graph = rmat(11, 30_000, seed=5)
        cache_bytes = 16 * 1024
        trace = vertex_access_trace(np.asarray(graph.adjacency.cols))
        sim = CacheSimulator(cache_bytes, line_bytes=64, ways=8)
        sim.run_trace(trace)
        predicted = cache_miss_rate(graph.num_vertices * 8, cache_bytes)
        assert abs(sim.stats.miss_rate - predicted) < 0.25

    def test_resident_case_agrees(self):
        graph = rmat(7, 2000, seed=5)
        cache_bytes = 1024 * 1024          # whole vertex array fits
        trace = vertex_access_trace(np.asarray(graph.adjacency.cols))
        sim = CacheSimulator(cache_bytes)
        sim.run_trace(trace)
        assert cache_miss_rate(graph.num_vertices * 8, cache_bytes) == 0.0
        assert sim.stats.miss_rate < 0.1   # cold misses only


class TestGridGraphEngine:
    @pytest.fixture
    def graph(self):
        return rmat(6, 220, seed=8, weighted=True)

    def test_pagerank_matches_reference(self, graph):
        engine = GridGraphEngine(num_chunks=4)
        result = engine.run("pagerank", graph, max_iterations=40)
        reference = pagerank_reference(graph, max_iterations=40)
        assert np.allclose(result.values, reference.values, atol=1e-9)

    def test_sssp_matches_reference(self, graph):
        engine = GridGraphEngine(num_chunks=3)
        result = engine.run("sssp", graph, source=0)
        reference = sssp_reference(graph, source=0)
        assert np.array_equal(result.values, reference.values)
        assert result.iterations == reference.iterations

    def test_bfs_matches_reference(self, graph):
        engine = GridGraphEngine(num_chunks=5)
        result = engine.run("bfs", graph, source=0)
        reference = bfs_reference(graph, source=0)
        assert np.array_equal(result.values, reference.values)

    def test_chunk_count_does_not_change_results(self, graph):
        few = GridGraphEngine(num_chunks=1).run("sssp", graph, source=0)
        many = GridGraphEngine(num_chunks=8).run("sssp", graph, source=0)
        assert np.array_equal(few.values, many.values)

    def test_trace_recorded(self, graph):
        result = GridGraphEngine().run("sssp", graph, source=0)
        assert result.trace.iterations == result.iterations
        assert result.trace.frontiers is not None

    def test_invalid_chunks(self):
        with pytest.raises(ConfigError):
            GridGraphEngine(num_chunks=0)
