"""Framework-level lint tests: suppressions, rule selection, the JSON
report schema, CLI exit codes, and the self-check that this repository
passes its own linter.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (LintPolicy, default_policy, list_rules,
                            run_lint)
from repro.analysis.registry import resolve_rules
from repro.analysis.reporting import (render_json, render_sarif,
                                      render_text)
from repro.analysis.suppressions import (is_suppressed,
                                         suppressed_rules_on_line)
from repro.cli import main
from repro.errors import LintError

ALL_RULES = ["REP101", "REP102", "REP103", "REP104", "REP105",
             "REP106",
             "REP201", "REP202", "REP203", "REP204", "REP205",
             "REP206"]
REP2_RULES = ALL_RULES[6:]


def make_pkg(tmp_path: Path, files: dict) -> Path:
    pkg = tmp_path / "fixturepkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for rel, text in files.items():
        (pkg / rel).write_text(textwrap.dedent(text))
    return pkg


#: A module with one REP102 violation — the one rule with no
#: repository-specific scoping, so it fires under the default policy.
VIOLATING = """\
def scan(root):
    found = []
    for path in root.glob("*.json"):
        found.append(path)
    return found
"""

CLEAN = VIOLATING.replace('root.glob("*.json")',
                          'sorted(root.glob("*.json"))')


# ----------------------------------------------------------------------
# Suppression syntax
# ----------------------------------------------------------------------
class TestSuppressionSyntax:
    def test_no_marker(self):
        assert suppressed_rules_on_line("x = 1  # a comment") is None

    def test_bare_marker_suppresses_all(self):
        assert suppressed_rules_on_line("x = 1  # repro: noqa") == set()

    def test_single_rule(self):
        line = "x = 1  # repro: noqa REP102"
        assert suppressed_rules_on_line(line) == {"REP102"}

    def test_rule_list_with_reason(self):
        line = "x = 1  # repro: noqa REP102, REP106 - deliberate"
        assert suppressed_rules_on_line(line) == {"REP102", "REP106"}

    def test_same_line_suppression(self):
        lines = ["for p in root.glob('*'):  # repro: noqa REP102 - ok"]
        assert is_suppressed(lines, 1, "REP102")
        assert not is_suppressed(lines, 1, "REP101")

    def test_comment_line_above(self):
        lines = ["# repro: noqa REP102 - reviewed",
                 "for p in root.glob('*'):"]
        assert is_suppressed(lines, 2, "REP102")

    def test_code_line_above_does_not_leak(self):
        lines = ["x = 1  # repro: noqa REP102",
                 "for p in root.glob('*'):"]
        assert not is_suppressed(lines, 2, "REP102")

    def test_suppressed_findings_counted(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING.replace(
            'root.glob("*.json"):',
            'root.glob("*.json"):  # repro: noqa REP102 - fixture')})
        result = run_lint([pkg], policy=LintPolicy())
        assert result.ok
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# Rule selection
# ----------------------------------------------------------------------
class TestRuleSelection:
    def test_registry_lists_all_rules(self):
        assert [r["rule"] for r in list_rules()] == ALL_RULES
        assert all(r["summary"] for r in list_rules())

    def test_resolve_default_is_everything(self):
        assert resolve_rules() == ALL_RULES

    def test_select_and_ignore(self):
        assert resolve_rules(select=["REP102", "REP106"]) == \
            ["REP102", "REP106"]
        assert resolve_rules(ignore=["REP103"]) == \
            [r for r in ALL_RULES if r != "REP103"]

    def test_unknown_rule_is_loud(self):
        with pytest.raises(LintError, match="BOGUS"):
            resolve_rules(select=["BOGUS"])

    def test_family_prefix_selects_the_family(self):
        assert resolve_rules(select=["REP2"]) == REP2_RULES
        assert resolve_rules(select=["REP1"]) == ALL_RULES[:6]
        assert resolve_rules(select=["REP"]) == ALL_RULES

    def test_prefix_mixes_with_exact_ids(self):
        assert resolve_rules(select=["REP103", "REP2"]) == \
            ["REP103", *REP2_RULES]

    def test_ignore_accepts_a_prefix(self):
        assert resolve_rules(ignore=["REP2"]) == ALL_RULES[:6]
        assert resolve_rules(select=["REP2"],
                             ignore=["REP204"]) == \
            [r for r in REP2_RULES if r != "REP204"]

    def test_prefix_matching_nothing_is_loud(self):
        with pytest.raises(LintError, match="REP9"):
            resolve_rules(select=["REP9"])

    def test_ignored_rule_not_run(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        result = run_lint([pkg], ignore=["REP102"],
                          policy=LintPolicy())
        assert result.ok
        assert "REP102" not in result.rules


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def test_json_schema(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        result = run_lint([pkg], policy=LintPolicy())
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["tool"] == "repro lint"
        assert payload["rules"] == ALL_RULES
        assert payload["files_scanned"] == 2  # __init__ + store
        assert payload["suppressed"] == 0
        assert payload["rule_counts"] == {"REP102": 1}
        (finding,) = payload["findings"]
        assert sorted(finding) == ["col", "line", "message", "module",
                                   "path", "rule"]
        assert finding["rule"] == "REP102"
        assert finding["line"] == 3
        assert finding["module"] == "fixturepkg.store"

    def test_text_report_lines(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        result = run_lint([pkg], policy=LintPolicy())
        text = render_text(result)
        assert "store.py:3:" in text
        assert "REP102" in text
        assert "1 finding(s)" in text

    def test_clean_text_report(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": CLEAN})
        text = render_text(run_lint([pkg], policy=LintPolicy()))
        assert text.startswith("clean:")

    def test_sarif_schema(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        result = run_lint([pkg], policy=LintPolicy())
        payload = json.loads(render_sarif(result))
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro lint"
        assert [r["id"] for r in driver["rules"]] == ALL_RULES
        assert all(r["shortDescription"]["text"]
                   for r in driver["rules"])
        (res,) = run["results"]
        assert res["ruleId"] == "REP102"
        assert res["level"] == "error"
        assert res["message"]["text"]
        (loc,) = res["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] >= 1
        uri = loc["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("fixturepkg/store.py")
        assert "\\" not in uri

    def test_sarif_clean_run_has_no_results(self, tmp_path):
        pkg = make_pkg(tmp_path, {"store.py": CLEAN})
        payload = json.loads(
            render_sarif(run_lint([pkg], policy=LintPolicy())))
        assert payload["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestLintCLI:
    def test_exit_1_on_findings(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        assert main(["lint", str(pkg)]) == 1
        out = capsys.readouterr().out
        assert "REP102" in out

    def test_exit_0_on_clean_tree(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": CLEAN})
        assert main(["lint", str(pkg)]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_json_flag(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        assert main(["lint", str(pkg), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rule_counts"] == {"REP102": 1}

    def test_select_skips_other_rules(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        assert main(["lint", str(pkg), "--select", "REP106"]) == 0
        capsys.readouterr()

    def test_select_family_prefix(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        # REP2xx rules see no concurrency in the fixture: clean.
        assert main(["lint", str(pkg), "--select", "REP2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == REP2_RULES

    def test_select_mixes_prefix_and_exact(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        assert main(["lint", str(pkg), "--select", "REP102,REP2",
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["REP102", *REP2_RULES]
        assert payload["rule_counts"] == {"REP102": 1}

    def test_format_sarif(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        assert main(["lint", str(pkg), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "REP102"

    def test_format_json_equals_json_flag(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING})
        assert main(["lint", str(pkg), "--format", "json"]) == 1
        via_format = capsys.readouterr().out
        assert main(["lint", str(pkg), "--json"]) == 1
        assert capsys.readouterr().out == via_format

    def test_single_file_restricts_findings(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": VIOLATING,
                                  "other.py": VIOLATING})
        assert main(["lint", str(pkg / "other.py")]) == 1
        out = capsys.readouterr().out
        assert "other.py:" in out
        assert "store.py:" not in out

    def test_exit_2_on_unknown_rule(self, tmp_path, capsys):
        pkg = make_pkg(tmp_path, {"store.py": CLEAN})
        assert main(["lint", str(pkg), "--select", "BOGUS"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_exit_2_outside_package(self, tmp_path, capsys):
        loose = tmp_path / "loose.py"
        loose.write_text("x = 1\n")
        assert main(["lint", str(loose)]) == 2
        assert "package" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out


# ----------------------------------------------------------------------
# Self-check
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_repository_passes_its_own_linter(self):
        """The shipped tree holds every invariant the linter encodes.

        This is the same gate CI runs; a failure here means a change
        introduced nondeterminism, an unsorted scan, an incomplete
        content key, a leak-prone shm path, ungated hot-path
        telemetry, or an untyped error — see docs/lint-rules.md.
        """
        result = run_lint([Path(repro.__file__).parent])
        assert result.ok, "\n" + "\n".join(
            f.render() for f in result.findings)
        assert result.rules == tuple(ALL_RULES)
        assert result.files_scanned > 50

    def test_default_policy_names_real_modules(self):
        policy = default_policy()
        prefix = Path(repro.__file__).parent
        for dotted in policy.compute_roots + policy.shm_owner_modules:
            rel = Path(*dotted.split(".")[1:])
            assert (prefix / rel).with_suffix(".py").exists() or \
                (prefix / rel / "__init__.py").exists(), dotted
