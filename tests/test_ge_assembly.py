"""Tests for the device-level graph engine assembly (Figure 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GraphRConfig
from repro.core.engine import GraphEngine
from repro.errors import DeviceError
from repro.reram.fixed_point import FixedPointFormat
from repro.reram.ge_assembly import DeviceGraphEngine


@pytest.fixture
def ge():
    return DeviceGraphEngine(crossbar_size=4, logical_crossbars=2,
                             fmt=FixedPointFormat(16, 8))


class TestAssembly:
    def test_geometry(self, ge):
        assert ge.width == 8
        assert ge.slices == 4
        assert len(ge.crossbars) == 2
        assert len(ge.crossbars[0]) == 4

    def test_invalid_geometry(self):
        with pytest.raises(DeviceError):
            DeviceGraphEngine(crossbar_size=0)

    def test_indivisible_width(self):
        from repro.hw.params import ReRAMParams
        with pytest.raises(DeviceError):
            DeviceGraphEngine(fmt=FixedPointFormat(18, 0),
                              reram=ReRAMParams(cell_bits=4))

    def test_repr(self, ge):
        assert "DeviceGraphEngine" in repr(ge)


class TestProgramAndPresent:
    def test_program_counts(self, ge, rng):
        tile = rng.random((4, 8))
        counts = ge.program_tile(tile)
        # 2 logical x 4 slices x 16 cells.
        assert counts.cells_written == 2 * 4 * 16

    def test_program_bad_shape(self, ge):
        with pytest.raises(DeviceError):
            ge.program_tile(np.zeros((4, 4)))

    def test_presentation_computes_dot_products(self, ge):
        tile = np.zeros((4, 8))
        tile[0, 0] = 0.5
        tile[2, 5] = 1.25
        ge.program_tile(tile)
        out, counts = ge.present(np.array([2.0, 0.0, 4.0, 0.0]))
        assert out[0] == pytest.approx(1.0)
        assert out[5] == pytest.approx(5.0)
        assert counts.mvm_ops == 2 * 4  # every slice crossbar fired

    def test_adc_path_quantizes(self, ge, rng):
        tile = rng.random((4, 8)) * 0.2
        ge.program_tile(tile)
        inputs = rng.random(4)
        exact, _ = ge.present(inputs, exact=True)
        coarse, _ = ge.present(inputs, exact=False)
        # The ADC grid is coarse; outputs differ but stay in the
        # right neighbourhood.
        assert np.allclose(exact, coarse, atol=ge.adc.full_scale
                           * ge.fmt.scale * ge.fmt.scale / 100)

    def test_mac_subgraph_reduces_into_accumulator(self, ge):
        tile = np.zeros((4, 8))
        tile[1, 3] = 1.0
        acc = np.full(8, 10.0)
        out = ge.mac_subgraph(tile, np.array([0.0, 3.0, 0.0, 0.0]), acc)
        assert out[3] == pytest.approx(13.0)
        assert out[0] == pytest.approx(10.0)


class TestEquivalenceWithFastEngine:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_device_chain_matches_vectorised_engine(self, seed):
        """The production GraphEngine shortcut must equal the full
        device assembly bit for bit."""
        rng = np.random.default_rng(seed)
        fmt = FixedPointFormat(16, 8)
        device = DeviceGraphEngine(crossbar_size=4, logical_crossbars=2,
                                   fmt=fmt)
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=1)
        fast = GraphEngine(config, coeff_fmt=fmt, input_fmt=fmt)

        tile = rng.integers(0, 250, (4, 8)) / 256.0
        inputs = rng.integers(0, 100, 4) / 256.0

        device.program_tile(tile)
        device_out, _ = device.present(inputs)
        fast_out, _ = fast.mac_tile(tile, inputs)
        assert np.allclose(device_out, fast_out)
