"""Unit tests for SpMV and collaborative filtering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.cf import (
    CollaborativeFilteringProgram,
    cf_reference,
    cf_rmse,
)
from repro.algorithms.spmv import SpMVProgram, spmv_reference
from repro.algorithms.vertex_program import MappingPattern
from repro.errors import GraphFormatError
from repro.graph.generators import bipartite_rating_graph, rmat


class TestSpMVReference:
    def test_matches_dense(self, small_weighted_graph, rng):
        n = small_weighted_graph.num_vertices
        x = rng.random(n)
        result = spmv_reference(small_weighted_graph, x)
        deg = np.where(small_weighted_graph.out_degrees() > 0,
                       small_weighted_graph.out_degrees(), 1)
        dense = small_weighted_graph.adjacency.to_dense()
        normalized = dense / deg[:, None]
        assert np.allclose(result.values, normalized.T @ x)

    def test_default_input_is_ones(self, small_graph):
        explicit = spmv_reference(small_graph,
                                  np.ones(small_graph.num_vertices))
        default = spmv_reference(small_graph)
        assert np.allclose(explicit.values, default.values)

    def test_single_iteration(self, small_graph):
        result = spmv_reference(small_graph)
        assert result.iterations == 1
        assert result.converged
        assert result.trace.total_edges_processed == small_graph.num_edges

    def test_bad_vector_length(self, small_graph):
        with pytest.raises(GraphFormatError):
            spmv_reference(small_graph, np.ones(3))

    def test_program_descriptor(self):
        program = SpMVProgram()
        assert program.pattern is MappingPattern.PARALLEL_MAC
        assert program.reduce_op == "add"
        assert not program.needs_active_list

    def test_program_coefficients(self, small_weighted_graph):
        coeffs = SpMVProgram().crossbar_coefficient(small_weighted_graph)
        src = np.asarray(small_weighted_graph.adjacency.rows)
        deg = small_weighted_graph.out_degrees()
        w = np.asarray(small_weighted_graph.adjacency.values)
        assert np.allclose(coeffs, w / deg[src])

    def test_program_converges_immediately(self, small_graph):
        program = SpMVProgram()
        assert program.has_converged(np.zeros(2), np.ones(2), 1)

    def test_program_bad_x(self, small_graph):
        with pytest.raises(GraphFormatError):
            SpMVProgram().initial_properties(small_graph, x=np.ones(3))


class TestCollaborativeFiltering:
    @pytest.fixture
    def ratings(self):
        return bipartite_rating_graph(40, 12, 300, seed=3)

    def test_rmse_decreases_with_epochs(self, ratings):
        short = cf_reference(ratings, features=8, epochs=2, seed=1)
        long = cf_reference(ratings, features=8, epochs=25, seed=1)
        assert cf_rmse(ratings, long.values) < cf_rmse(ratings,
                                                       short.values)

    def test_final_rmse_reasonable(self, ratings):
        result = cf_reference(ratings, features=8, epochs=60,
                              learning_rate=0.05, seed=1)
        assert cf_rmse(ratings, result.values) < 0.5

    def test_factor_shape(self, ratings):
        result = cf_reference(ratings, features=16, epochs=2)
        assert result.values.shape == (ratings.num_vertices, 16)

    def test_trace_counts_every_rating(self, ratings):
        result = cf_reference(ratings, features=4, epochs=3)
        assert result.trace.iterations == 3
        assert all(e == ratings.num_edges
                   for e in result.trace.active_edges)

    def test_deterministic(self, ratings):
        a = cf_reference(ratings, features=4, epochs=2, seed=7)
        b = cf_reference(ratings, features=4, epochs=2, seed=7)
        assert np.array_equal(a.values, b.values)

    def test_empty_ratings_rejected(self):
        from repro.graph.coo import COOMatrix
        from repro.graph.graph import Graph
        empty = Graph(adjacency=COOMatrix.empty((4, 4)))
        with pytest.raises(GraphFormatError):
            cf_reference(empty)

    def test_rmse_shape_validation(self, ratings):
        with pytest.raises(GraphFormatError):
            cf_rmse(ratings, np.ones((3, 2)))

    def test_program_descriptor(self):
        program = CollaborativeFilteringProgram(features=32, epochs=10)
        assert program.pattern is MappingPattern.PARALLEL_MAC
        assert program.features == 32
        assert program.has_converged(None, None, 10)
        assert not program.has_converged(None, None, 9)

    def test_program_bad_params(self):
        with pytest.raises(GraphFormatError):
            CollaborativeFilteringProgram(features=0)

    def test_program_coefficients_are_ratings(self, ratings):
        coeffs = CollaborativeFilteringProgram().crossbar_coefficient(
            ratings)
        assert np.array_equal(coeffs,
                              np.asarray(ratings.adjacency.values))
