"""Unit tests for the algorithm registry and Table 2 consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import (
    TABLE2_ROWS,
    get_program,
    list_algorithms,
    run_reference,
)
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
)
from repro.errors import ConfigError


class TestRegistry:
    def test_all_algorithms_listed(self):
        assert set(list_algorithms()) == {"pagerank", "bfs", "sssp",
                                          "spmv", "cf", "wcc",
                                          "kcore", "sswp", "ppr"}

    def test_get_program_case_insensitive(self):
        assert get_program("PageRank").name == "pagerank"

    def test_get_program_with_kwargs(self):
        program = get_program("bfs", source=3)
        assert program.source == 3

    def test_unknown_program(self):
        with pytest.raises(ConfigError):
            get_program("dfs")

    def test_unknown_reference(self):
        with pytest.raises(ConfigError):
            run_reference("dfs", None)

    def test_run_reference_dispatch(self, small_graph):
        result = run_reference("pagerank", small_graph, max_iterations=3)
        assert isinstance(result, AlgorithmResult)
        assert result.algorithm == "pagerank"

    def test_table2_covers_non_cf_algorithms(self):
        apps = {row.application for row in TABLE2_ROWS}
        assert apps == {"spmv", "pagerank", "bfs", "sssp"}

    def test_table2_agrees_with_programs(self):
        for row in TABLE2_ROWS:
            program = get_program(row.application)
            if "min" in row.reduce:
                assert program.reduce_op == "min"
            else:
                assert program.reduce_op == "add"
            assert program.needs_active_list == \
                row.active_vertex_list_required


class TestIterationTrace:
    def test_record_without_frontier(self):
        trace = IterationTrace()
        trace.record(10, 100)
        assert trace.iterations == 1
        assert trace.total_edges_processed == 100
        assert trace.frontiers is None

    def test_record_with_frontier(self):
        trace = IterationTrace(frontiers=[])
        trace.record(1, 5, frontier=np.array([True, False]))
        assert len(trace.frontiers) == 1
        assert trace.frontiers[0].dtype == bool

    def test_frontier_copied(self):
        trace = IterationTrace(frontiers=[])
        frontier = np.array([True, False])
        trace.record(1, 5, frontier=frontier)
        frontier[0] = False
        assert trace.frontiers[0][0]

    def test_pattern_enum_values(self):
        assert MappingPattern.PARALLEL_MAC.value == "parallel-mac"
        assert MappingPattern.PARALLEL_ADD_OP.value == "parallel-add-op"
