"""Tests for the recorded perf trajectory (repro.experiments.bench and
the ``repro bench`` CLI)."""

from __future__ import annotations

import json

import pytest

from repro.errors import JobError
from repro.experiments import bench
from repro.experiments.bench import (BENCH_PHASES, BENCH_WORKLOADS,
                                     bench_filename, compare,
                                     load_bench, phase_totals,
                                     run_bench, write_bench)

#: A two-workload grid so the bench tests run in seconds.
TINY_GRID = (
    {"label": "spmv:WV", "algorithm": "spmv", "dataset": "WV"},
    {"label": "bfs:WV", "algorithm": "bfs", "dataset": "WV",
     "run_kwargs": {"source": 0}},
)


class TestPhaseTotals:
    def test_classifies_spans_into_phases(self):
        trace = {
            "name": "job",
            "children": [
                {"name": "queue-wait", "duration_s": 0.5},
                {"name": "prepare", "duration_s": 1.0},
                {"name": "iteration", "children": [
                    {"name": "sweep", "duration_s": 2.0},
                    {"name": "merge", "duration_s": 0.25},
                ]},
                {"name": "shard-attach", "duration_s": 0.125},
                {"name": "shard-build", "duration_s": 0.75},
                {"name": "attach", "duration_s": 0.0625},
            ],
        }
        assert phase_totals(trace) == {
            "queue": 0.5, "prepare": 1.75, "attach": 0.1875,
            "compute": 2.0, "merge": 0.25}

    def test_classified_spans_bill_their_children_once(self):
        # A reference solve nested inside a sweep must not be counted
        # on top of the sweep that already contains it.
        trace = {"name": "job", "children": [
            {"name": "sweep", "duration_s": 3.0, "children": [
                {"name": "reference", "duration_s": 2.0},
                {"name": "merge", "duration_s": 0.5},
            ]},
        ]}
        totals = phase_totals(trace)
        assert totals["compute"] == 3.0
        assert totals["merge"] == 0.0

    def test_missing_trace_is_all_zero(self):
        assert phase_totals(None) == {phase: 0.0
                                      for phase in BENCH_PHASES}
        assert phase_totals({"name": "job"})["compute"] == 0.0


class TestPinnedGrid:
    def test_grid_covers_at_least_four_algorithms(self):
        algorithms = {entry["algorithm"] for entry in BENCH_WORKLOADS}
        assert len(algorithms) >= 4

    def test_grid_covers_every_deployment(self):
        kinds = {entry.get("deployment", "single")
                 for entry in BENCH_WORKLOADS}
        assert kinds == {"single", "out-of-core", "multi-node"}

    def test_labels_are_unique(self):
        labels = [entry["label"] for entry in BENCH_WORKLOADS]
        assert len(labels) == len(set(labels))


class TestRunBench:
    def test_document_shape_and_round_trip(self, tmp_path):
        document = run_bench(workloads=TINY_GRID, rev="testrev")
        assert document["rev"] == "testrev"
        assert len(document["workloads"]) == 2
        for row in document["workloads"]:
            assert set(row["phases"]) == set(BENCH_PHASES)
            assert row["wall_s"] == pytest.approx(
                sum(row["phases"].values()))
            assert row["simulated"]["seconds"] > 0
        out = write_bench(document, tmp_path / "BENCH_testrev.json")
        assert load_bench(out) == json.loads(json.dumps(document))

    def test_compute_phase_is_nonzero(self):
        document = run_bench(workloads=TINY_GRID)
        for row in document["workloads"]:
            assert row["phases"]["compute"] > 0.0

    def test_failing_workload_raises(self):
        with pytest.raises(JobError):
            run_bench(workloads=(
                {"label": "bad", "algorithm": "sssp", "dataset": "WV",
                 "run_kwargs": {"source": 10 ** 9}},))

    def test_bench_filename(self):
        assert bench_filename("abc123") == "BENCH_abc123.json"


class TestCompare:
    def _doc(self, compute):
        return {"workloads": [{
            "label": "spmv:WV",
            "phases": {"queue": 0.0, "prepare": 0.2,
                       "compute": compute, "merge": 0.1},
        }]}

    def test_self_comparison_is_clean(self):
        doc = self._doc(1.0)
        assert compare(doc, doc) == []

    def test_detects_regression_beyond_threshold(self):
        regressions = compare(self._doc(1.3), self._doc(1.0),
                              threshold=0.25)
        assert len(regressions) == 1
        assert regressions[0]["phase"] == "compute"
        assert regressions[0]["ratio"] == pytest.approx(1.3)

    def test_within_threshold_passes(self):
        assert compare(self._doc(1.2), self._doc(1.0),
                       threshold=0.25) == []

    def test_noise_floor_ignores_tiny_baselines(self):
        fast = {"workloads": [{"label": "spmv:WV",
                               "phases": {"compute": 0.001}}]}
        slow = {"workloads": [{"label": "spmv:WV",
                               "phases": {"compute": 0.04}}]}
        assert compare(slow, fast, min_seconds=0.05) == []
        assert compare(slow, fast, min_seconds=0.0005)

    def test_unshared_workloads_are_skipped(self):
        current = {"workloads": [{"label": "new",
                                  "phases": {"compute": 9.0}}]}
        assert compare(current, self._doc(1.0)) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(JobError):
            compare(self._doc(1.0), self._doc(1.0), threshold=-0.1)

    def test_load_bench_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json{")
        with pytest.raises(JobError):
            load_bench(path)
        path.write_text(json.dumps({"no": "workloads"}))
        with pytest.raises(JobError):
            load_bench(path)


class TestCLI:
    @pytest.fixture(autouse=True)
    def tiny_grid(self, monkeypatch):
        monkeypatch.setattr(bench, "BENCH_WORKLOADS", TINY_GRID)

    def test_bench_writes_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_a.json"
        assert main(["bench", "--out", str(out)]) == 0
        document = load_bench(out)
        assert len(document["workloads"]) == 2
        assert "wrote" in capsys.readouterr().out

        # A fresh run against its own baseline must pass the gate …
        again = tmp_path / "BENCH_b.json"
        assert main(["bench", "--out", str(again), "--against",
                     str(out), "--threshold", "100.0"]) == 0

        # … and an impossible baseline must fail it.
        crushed = json.loads(out.read_text())
        for row in crushed["workloads"]:
            row["phases"] = {phase: value / 1e6
                             for phase, value in row["phases"].items()}
        baseline = tmp_path / "BENCH_crushed.json"
        baseline.write_text(json.dumps(crushed))
        code = main(["bench", "--out", str(again), "--against",
                     str(baseline), "--min-seconds", "0"])
        assert code == 1
        assert "regression" in capsys.readouterr().err

    def test_bench_json_output(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_j.json"
        assert main(["bench", "--out", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["out"] == str(out)
        assert payload["regressions"] == []
        assert len(payload["bench"]["workloads"]) == 2
