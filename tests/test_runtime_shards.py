"""Tests for prepared-shard reuse of out-of-core jobs."""

from __future__ import annotations

import pytest

from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.graph.datasets import dataset
from repro.runtime import BatchRunner, shards as shards_module
from repro.runtime.job import Job
from repro.runtime.scheduler import execute_job
from repro.runtime.shards import prepared_block_dir, shard_key

OOC_JOB = Job(
    "pagerank", "WV",
    config=GraphRConfig(mode="analytic", block_size=2048),
    deployment=DeploymentSpec(kind="out-of-core"),
    run_kwargs={"max_iterations": 3},
)


def counting_prepare(counter):
    real = shards_module.prepare_on_disk

    def wrapper(graph, directory, config):
        counter.append(directory)
        return real(graph, directory, config)

    return wrapper


class TestShardKey:
    def test_deterministic(self):
        config = GraphRConfig(mode="analytic", block_size=2048)
        assert shard_key("WV", 7, False, config) == \
            shard_key("WV", 7, False, config)

    def test_sensitive_to_layout_inputs(self):
        config = GraphRConfig(mode="analytic", block_size=2048)
        base = shard_key("WV", 7, False, config)
        assert shard_key("SD", 7, False, config) != base
        assert shard_key("WV", 8, False, config) != base
        assert shard_key("WV", 7, True, config) != base
        assert shard_key(
            "WV", 7, False,
            GraphRConfig(mode="analytic", block_size=1024)) != base
        assert shard_key(
            "WV", 7, False,
            GraphRConfig(mode="analytic", block_size=2048,
                         crossbar_size=4)) != base

    def test_insensitive_to_cost_knobs(self):
        config = GraphRConfig(mode="analytic", block_size=2048)
        tweaked = GraphRConfig(mode="analytic", block_size=2048,
                               mem_bandwidth_bps=1e9)
        assert shard_key("WV", 7, False, config) == \
            shard_key("WV", 7, False, tweaked)


class TestPreparedBlockDir:
    def test_second_call_reuses_the_shard(self, tmp_path,
                                          monkeypatch):
        calls = []
        monkeypatch.setattr(shards_module, "prepare_on_disk",
                            counting_prepare(calls))
        graph = dataset("WV")
        config = GraphRConfig(mode="analytic", block_size=2048)
        first = prepared_block_dir(graph, config, tmp_path,
                                   dataset="WV", dataset_seed=7,
                                   weighted=False)
        second = prepared_block_dir(graph, config, tmp_path,
                                    dataset="WV", dataset_seed=7,
                                    weighted=False)
        assert first == second
        assert len(calls) == 1
        assert (first / "manifest.json").exists()
        assert first.parent == tmp_path / "shards"

    def test_no_stray_scratch_dirs(self, tmp_path):
        graph = dataset("WV")
        config = GraphRConfig(mode="analytic", block_size=2048)
        prepared_block_dir(graph, config, tmp_path, dataset="WV",
                           dataset_seed=7, weighted=False)
        leftovers = [p for p in (tmp_path / "shards").iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []


class TestExecuteJobReuse:
    def test_second_out_of_core_run_skips_the_reshard(self, tmp_path,
                                                      monkeypatch):
        calls = []
        monkeypatch.setattr(shards_module, "prepare_on_disk",
                            counting_prepare(calls))
        first = execute_job(OOC_JOB, cache_dir=str(tmp_path))
        second = execute_job(OOC_JOB, cache_dir=str(tmp_path))
        assert len(calls) == 1          # the regression guard
        assert second.to_dict() == first.to_dict()

    def test_shard_path_matches_tempdir_path_bit_for_bit(self,
                                                         tmp_path):
        via_shard_cache = execute_job(OOC_JOB,
                                      cache_dir=str(tmp_path))
        via_tempdir = execute_job(OOC_JOB)
        assert via_shard_cache.to_dict() == via_tempdir.to_dict()

    def test_batch_runner_threads_its_cache_dir(self, tmp_path,
                                                monkeypatch):
        calls = []
        monkeypatch.setattr(shards_module, "prepare_on_disk",
                            counting_prepare(calls))
        runner = BatchRunner(cache_dir=tmp_path)
        fresh = runner.run_jobs([OOC_JOB])[0]
        assert fresh.ok
        assert len(calls) == 1
        assert (tmp_path / "shards").exists()
        # Result entries and shards coexist: the result cache's
        # inventory must not list shard files.
        keys = {entry.key for entry in runner.cache.entries()}
        assert keys == {OOC_JOB.content_key()}

    def test_different_block_size_gets_its_own_shard(self, tmp_path):
        execute_job(OOC_JOB, cache_dir=str(tmp_path))
        other = Job(
            "pagerank", "WV",
            config=GraphRConfig(mode="analytic", block_size=1024),
            deployment=DeploymentSpec(kind="out-of-core"),
            run_kwargs={"max_iterations": 3},
        )
        execute_job(other, cache_dir=str(tmp_path))
        shards = [p for p in (tmp_path / "shards").iterdir()
                  if p.is_dir()]
        assert len(shards) == 2
