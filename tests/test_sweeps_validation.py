"""Tests for the sweep utilities and the cross-mode validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.sweeps import (
    SweepPoint,
    bandwidth_sweep,
    block_size_sweep,
    deployment_sweep,
    geometry_sweep,
    workload_sweep,
)
from repro.experiments.validation import validate, validate_matrix
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(7, 900, seed=23, name="sweep-graph")


class TestGeometrySweep:
    def test_grid_covered(self, graph):
        points = geometry_sweep(graph, crossbar_sizes=(4, 8),
                                ge_counts=(16, 64),
                                run_kwargs={"max_iterations": 3})
        assert len(points) == 4
        for point in points:
            assert point.seconds > 0
            assert point.joules > 0
            assert set(point.parameters) == {"crossbar_size", "num_ges"}

    def test_more_ges_never_slower(self, graph):
        points = geometry_sweep(graph, crossbar_sizes=(8,),
                                ge_counts=(16, 256),
                                run_kwargs={"max_iterations": 3})
        few, many = points
        assert many.seconds <= few.seconds


class TestBlockSizeSweep:
    def test_points_produced(self, graph):
        points = block_size_sweep(graph, block_sizes=(32, 128),
                                  run_kwargs={"max_iterations": 3})
        assert len(points) == 2
        assert all(p.seconds > 0 for p in points)


class TestBandwidthSweep:
    def test_more_bandwidth_never_slower(self, graph):
        points = bandwidth_sweep(graph,
                                 bandwidths_bps=(1e9, 1e12),
                                 run_kwargs={"max_iterations": 3})
        slow, fast = points
        assert fast.seconds <= slow.seconds


class TestDeploymentSweep:
    def test_grid_covers_all_scenarios(self):
        points = deployment_sweep("WV", block_sizes=(2048,),
                                  node_counts=(2,),
                                  run_kwargs={"max_iterations": 2})
        scenarios = [point.parameters["deployment"] for point in points]
        assert scenarios == ["single", "out-of-core", "multi-node"]
        for point in points:
            assert point.seconds > 0
            assert point.iterations == 2

    def test_needs_dataset_code(self, graph):
        with pytest.raises(ConfigError):
            deployment_sweep(graph)


class TestWorkloadSweep:
    def test_covers_whole_registry_by_default(self):
        from repro.algorithms.registry import list_algorithms
        points = workload_sweep("WV")
        assert [p.parameters["algorithm"] for p in points] == \
            list(list_algorithms())
        for point in points:
            assert point.seconds > 0
            assert point.joules > 0

    def test_subset_and_overrides(self):
        points = workload_sweep(
            "WV", algorithms=("kcore", "ppr"),
            run_kwargs={"kcore": {"k": 3},
                        "ppr": {"source": 1, "max_iterations": 2}})
        assert points[0].parameters == {"algorithm": "kcore", "k": 3}
        assert points[1].parameters["source"] == 1
        assert points[1].iterations == 2

    def test_needs_dataset_code(self, graph):
        with pytest.raises(ConfigError):
            workload_sweep(graph)


class TestSweepPoint:
    def test_from_stats(self):
        from repro.hw.stats import RunStats
        stats = RunStats("graphr", "spmv", "x", seconds=1.0,
                         iterations=2)
        stats.energy.charge_joules("x", 3.0)
        point = SweepPoint.from_stats({"a": 1}, stats)
        assert point.seconds == 1.0
        assert point.joules == 3.0
        assert point.parameters == {"a": 1}


class TestValidation:
    def test_sssp_validation_passes(self):
        graph = rmat(5, 90, seed=1, weighted=True, name="v")
        report = validate("sssp", graph, source=0)
        assert report.passed
        assert report.max_value_error == 0.0
        assert "PASS" in report.describe()

    def test_pagerank_validation_passes(self):
        graph = rmat(5, 90, seed=1, name="v")
        report = validate("pagerank", graph)
        assert report.passed
        assert report.max_value_error < 5e-2

    def test_cf_rejected(self):
        graph = rmat(5, 90, seed=1)
        with pytest.raises(ConfigError):
            validate("cf", graph)

    def test_validate_matrix_all_pass(self):
        graph = rmat(5, 100, seed=6, weighted=True, name="vm")
        reports = validate_matrix(graph)
        assert set(reports) == {"pagerank", "bfs", "sssp", "spmv",
                                "wcc", "sswp", "ppr"}
        for name, report in reports.items():
            assert report.passed, report.describe()
