"""Tests for the canonical job spec and job files."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.config import GraphRConfig
from repro.errors import JobError
from repro.runtime.job import Job, load_jobfile


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(JobError):
            Job("dfs", "WV")

    def test_unknown_platform(self):
        with pytest.raises(JobError):
            Job("pagerank", "WV", platform="tpu")

    def test_unknown_dataset(self):
        with pytest.raises(JobError):
            Job("pagerank", "XX")

    def test_dataset_code_normalised(self):
        assert Job("pagerank", "wv").dataset == "WV"

    def test_non_json_kwargs_rejected(self):
        with pytest.raises(JobError):
            Job("pagerank", "WV", run_kwargs={"x": object()})

    def test_wrong_types_rejected_as_job_errors(self):
        """Job files are user input: type garbage must surface as
        JobError (CLI `error:` exit), never a raw traceback."""
        with pytest.raises(JobError):
            Job("pagerank", 5)
        with pytest.raises(JobError):
            Job("pagerank", "WV", dataset_seed="abc")
        with pytest.raises(JobError):
            Job("pagerank", "WV", run_kwargs=[1, 2])
        with pytest.raises(JobError):
            Job("pagerank", "WV", weighted="yes")
        with pytest.raises(JobError):
            Job("pagerank", "WV", config={"num_ges": 8})
        with pytest.raises(JobError):
            Job.from_dict({"algorithm": "pagerank", "dataset": "WV",
                           "dataset_seed": "abc"})
        with pytest.raises(JobError):
            Job.from_dict({"algorithm": "pagerank", "dataset": "WV",
                           "config": {"num_ges": "many"}})

    def test_kwargs_snapshot(self):
        kwargs = {"max_iterations": 5}
        job = Job("pagerank", "WV", run_kwargs=kwargs)
        kwargs["max_iterations"] = 99
        assert job.run_kwargs["max_iterations"] == 5


class TestCanonicalization:
    def test_weighted_resolution(self):
        assert Job("sssp", "WV").resolved_weighted
        assert not Job("pagerank", "WV").resolved_weighted
        assert Job("pagerank", "WV", weighted=True).resolved_weighted

    def test_config_expanded_for_graphr(self):
        payload = Job("pagerank", "WV").canonical_dict()
        assert payload["config"] == \
            GraphRConfig(mode="analytic").to_dict()

    def test_baselines_exclude_config(self):
        """A config sweep must never invalidate baseline results."""
        a = Job("pagerank", "WV", platform="cpu")
        b = Job("pagerank", "WV", platform="cpu",
                config=GraphRConfig(num_ges=8))
        assert "config" not in a.canonical_dict()
        assert a.content_key() == b.content_key()

    def test_equivalent_jobs_share_key(self):
        explicit = Job("pagerank", "wv",
                       config=GraphRConfig(mode="analytic"),
                       weighted=False)
        shorthand = Job("pagerank", "WV")
        assert explicit.content_key() == shorthand.content_key()

    def test_key_sensitivity(self):
        base = Job("pagerank", "WV")
        assert base.content_key() != Job("bfs", "WV").content_key()
        assert base.content_key() != Job("pagerank", "SD").content_key()
        assert base.content_key() != \
            Job("pagerank", "WV", platform="cpu").content_key()
        assert base.content_key() != \
            Job("pagerank", "WV", dataset_seed=8).content_key()
        assert base.content_key() != \
            Job("pagerank", "WV",
                run_kwargs={"max_iterations": 5}).content_key()
        assert base.content_key() != \
            Job("pagerank", "WV",
                config=GraphRConfig(mode="analytic",
                                    num_ges=8)).content_key()

    def test_key_stable_across_process_restart(self):
        """The cache must survive restarts: a fresh interpreter derives
        the same content key for the same job."""
        job = Job("pagerank", "WV",
                  config=GraphRConfig(mode="analytic", num_ges=8),
                  run_kwargs={"max_iterations": 5})
        script = (
            "from repro.core.config import GraphRConfig\n"
            "from repro.runtime.job import Job\n"
            "job = Job('pagerank', 'WV',\n"
            "          config=GraphRConfig(mode='analytic', num_ges=8),\n"
            "          run_kwargs={'max_iterations': 5})\n"
            "print(job.content_key())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src, env.get("PYTHONPATH")]))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == job.content_key()

    def test_tuple_kwargs_normalised_to_json_form(self):
        """Tuple-valued kwargs must canonicalize like their JSON (list)
        spelling, or a job would never match its own cache entry."""
        tupled = Job("pagerank", "WV", run_kwargs={"sources": (1, 2)})
        listed = Job("pagerank", "WV", run_kwargs={"sources": [1, 2]})
        assert tupled.run_kwargs == {"sources": [1, 2]}
        assert tupled == listed
        assert tupled.content_key() == listed.content_key()
        assert json.loads(json.dumps(tupled.canonical_dict())) == \
            tupled.canonical_dict()

    def test_job_hashable_and_eq(self):
        a = Job("pagerank", "WV", run_kwargs={"max_iterations": 5})
        b = Job("pagerank", "WV", run_kwargs={"max_iterations": 5})
        assert a == b
        assert len({a, b}) == 1


class TestDictRoundTrip:
    def test_round_trip(self):
        job = Job("sssp", "AZ", platform="graphr",
                  config=GraphRConfig(mode="analytic", num_ges=16),
                  run_kwargs={"source": 3}, dataset_seed=11)
        clone = Job.from_dict(job.to_dict())
        assert clone == job
        assert clone.content_key() == job.content_key()

    def test_partial_config_override(self):
        job = Job.from_dict({"algorithm": "pagerank", "dataset": "WV",
                             "config": {"mode": "analytic",
                                        "num_ges": 8}})
        assert job.config.num_ges == 8

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError):
            Job.from_dict({"algorithm": "pagerank", "dataset": "WV",
                           "iterations": 5})

    def test_missing_required_rejected(self):
        with pytest.raises(JobError):
            Job.from_dict({"algorithm": "pagerank"})


class TestJobfile:
    def test_defaults_merged(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({
            "defaults": {"platform": "cpu", "dataset_seed": 9},
            "jobs": [
                {"algorithm": "pagerank", "dataset": "WV"},
                {"algorithm": "bfs", "dataset": "SD",
                 "platform": "graphr"},
            ],
        }))
        jobs = load_jobfile(path)
        assert [j.platform for j in jobs] == ["cpu", "graphr"]
        assert all(j.dataset_seed == 9 for j in jobs)

    def test_bare_list(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(
            [{"algorithm": "spmv", "dataset": "WV"}]))
        jobs = load_jobfile(path)
        assert jobs[0].algorithm == "spmv"

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"jobs": []}))
        with pytest.raises(JobError):
            load_jobfile(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JobError):
            load_jobfile(tmp_path / "absent.json")

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("not json")
        with pytest.raises(JobError):
            load_jobfile(path)
