"""Unit tests for the experiment harness, report and table builders.

Figure builders hit the full dataset analogs and are exercised by the
benchmark suite; here we test the machinery on cheap inputs.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.harness import (
    ComparisonRow,
    ExperimentRunner,
    geometric_mean,
)
from repro.experiments.report import render_table
from repro.experiments.tables import table1, table2, table3
from repro.hw.stats import RunStats


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [["11", "2"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  | bbb")
        assert lines[2].startswith("11 | 2")

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_header_required(self):
        with pytest.raises(ConfigError):
            render_table([], [])

    def test_row_width_checked(self):
        with pytest.raises(ConfigError):
            render_table(["a", "b"], [["1"]])


class TestTables:
    def test_table1_structure(self):
        rows, text = table1()
        assert len(rows) == 6
        assert "GraphR" in text

    def test_table2_consistency(self):
        rows, text = table2()
        assert len(rows) == 4
        assert "parallel MAC" in text and "parallel add-op" in text

    def test_table3_without_generation(self):
        rows, text = table3(generate=False)
        assert len(rows) == 7
        assert "LiveJournal" in text


class TestComparisonRow:
    def test_as_tuple(self):
        row = ComparisonRow("pagerank", "WV", 2.0, 3.0,
                            RunStats("graphr", "pagerank", "WV"),
                            RunStats("cpu", "pagerank", "WV"))
        assert row.as_tuple() == ("pagerank", "WV", 2.0, 3.0)


class TestFigureResult:
    @pytest.fixture
    def result(self):
        rows = [ComparisonRow("pagerank", "WV", 2.0, 3.0,
                              RunStats("graphr", "pagerank", "WV"),
                              RunStats("cpu", "pagerank", "WV"))]
        return FigureResult("Figure X", "test", rows,
                            geomean_speedup=2.0, geomean_energy=3.0)

    def test_describe(self, result):
        text = result.describe()
        assert "Figure X" in text
        assert "2.00" in text and "3.00" in text

    def test_cell_lookup(self, result):
        assert result.cell("pagerank", "WV").speedup == 2.0
        with pytest.raises(KeyError):
            result.cell("bfs", "WV")


class TestRunner:
    def test_unknown_platform(self):
        runner = ExperimentRunner()
        with pytest.raises(ConfigError):
            runner.stats("tpu", "pagerank", "WV")

    def test_cache_returns_same_object(self):
        runner = ExperimentRunner(
            run_kwargs={"spmv": {}})
        first = runner.stats("graphr", "spmv", "WV")
        second = runner.stats("graphr", "spmv", "WV")
        assert first is second

    def test_compare_row_fields(self):
        runner = ExperimentRunner()
        row = runner.compare("cpu", "spmv", "WV")
        assert row.algorithm == "spmv"
        assert row.dataset == "WV"
        assert row.speedup > 0
        assert row.energy_saving > 0
        assert row.graphr.platform == "graphr"
        assert row.baseline.platform == "cpu"

    def test_weighted_graph_for_sssp(self):
        runner = ExperimentRunner()
        graph = runner.graph_for("sssp", "WV")
        assert graph.weighted
        assert not runner.graph_for("pagerank", "WV").weighted
