"""Tests for the public GraphR facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import get_program
from repro.algorithms.sssp import sssp_reference
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.graph.generators import rmat


@pytest.fixture
def accel():
    return GraphR(GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                               num_ges=2, max_iterations=60))


class TestRun:
    def test_run_by_name(self, accel, small_graph):
        result, stats = accel.run("pagerank", small_graph)
        assert result.algorithm == "pagerank"
        assert stats.platform == "graphr"
        assert stats.dataset == small_graph.name

    def test_run_with_program_instance(self, accel, small_weighted_graph):
        program = get_program("sssp", source=0)
        result, _ = accel.run(program, small_weighted_graph, source=0)
        reference = sssp_reference(small_weighted_graph, source=0)
        assert np.array_equal(result.values, reference.values)

    def test_source_kwarg_routed(self, accel, small_weighted_graph):
        r0, _ = accel.run("sssp", small_weighted_graph, source=0)
        r1, _ = accel.run("sssp", small_weighted_graph, source=1)
        assert not np.array_equal(r0.values, r1.values)

    def test_damping_kwarg_routed(self, accel, small_graph):
        high, _ = accel.run("pagerank", small_graph, damping=0.95,
                            mode="analytic")
        low, _ = accel.run("pagerank", small_graph, damping=0.5,
                           mode="analytic")
        assert not np.allclose(high.values, low.values)

    def test_unknown_algorithm(self, accel, small_graph):
        with pytest.raises(ConfigError):
            accel.run("pagerankk", small_graph)

    def test_default_config(self):
        assert GraphR().config.crossbar_size == 8

    def test_repr(self, accel):
        assert "GraphR(" in repr(accel)

    def test_stats_include_config(self, accel, small_graph):
        _, stats = accel.run("spmv", small_graph)
        assert stats.extra["config"]["crossbar_size"] == 4


class TestModeSelection:
    def test_small_graph_runs_functional(self, accel, small_graph):
        _, stats = accel.run("spmv", small_graph)
        assert stats.extra["mode"] == "functional"

    def test_large_graph_falls_back_to_analytic(self):
        accel = GraphR(GraphRConfig(functional_tile_budget=10))
        graph = rmat(8, 2000, seed=2)
        _, stats = accel.run("spmv", graph)
        assert stats.extra["mode"] == "analytic"

    def test_kcore_gets_no_frontier_discount(self):
        """The MAC functional path has no active-list skip, so k-core
        must be projected densely: a budget the few-sweep discount
        would satisfy still falls back to analytic."""
        from repro.algorithms.registry import get_program
        from repro.core.accelerator import choose_execution_mode

        config = GraphRConfig(max_iterations=100,
                              functional_tile_budget=1000)
        # 100 subgraphs x 100 iterations = 10000 > 1000; the add-op
        # discount (100 x 4 = 400) would wrongly fit the budget.
        assert choose_execution_mode(config, get_program("kcore"),
                                     nonempty_subgraphs=100) \
            == "analytic"
        assert choose_execution_mode(config, get_program("sssp"),
                                     nonempty_subgraphs=100) \
            == "functional"

    def test_cf_always_analytic(self, accel):
        from repro.graph.generators import bipartite_rating_graph
        ratings = bipartite_rating_graph(30, 10, 120, seed=1)
        _, stats = accel.run("cf", ratings, epochs=2, features=4)
        assert stats.extra["mode"] == "analytic"

    def test_explicit_mode_override(self, accel, small_graph):
        _, stats = accel.run("spmv", small_graph, mode="analytic")
        assert stats.extra["mode"] == "analytic"

    def test_config_mode_respected(self, small_graph):
        accel = GraphR(GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                    num_ges=2, mode="analytic"))
        _, stats = accel.run("spmv", small_graph)
        assert stats.extra["mode"] == "analytic"


class TestMapperEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_functional_and_analytic_agree_on_sssp(self, seed):
        graph = rmat(5, 90, seed=seed, weighted=True)
        cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                           num_ges=2, max_iterations=60)
        accel = GraphR(cfg)
        functional, f_stats = accel.run("sssp", graph, source=0,
                                        mode="functional")
        analytic, a_stats = accel.run("sssp", graph, source=0,
                                      mode="analytic")
        assert np.array_equal(functional.values, analytic.values)
        assert f_stats.iterations == a_stats.iterations
        assert f_stats.seconds == pytest.approx(a_stats.seconds, rel=0.05)
