"""Consolidated hypothesis property tests on core invariants.

Module-specific property tests live next to their units; this file
holds the cross-cutting ones a reviewer would want stated in one place:
conservation laws, permutation invariances and cost monotonicity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GraphRConfig
from repro.core.cost import CostModel, IterationEvents
from repro.graph.coo import COOMatrix
from repro.graph.generators import rmat
from repro.hw.energy import EnergyLedger


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000),
       edges=st.integers(min_value=1, max_value=200))
def test_matvec_invariant_under_entry_permutation(seed, edges):
    """A @ x must not depend on the storage order of the entries."""
    rng = np.random.default_rng(seed)
    graph = rmat(5, edges, seed=seed, weighted=True)
    coo = graph.adjacency
    x = rng.random(coo.shape[1])
    perm = rng.permutation(coo.nnz)
    assert np.allclose(coo.matvec(x), coo.permuted(perm).matvec(x))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_transpose_is_involution(seed):
    graph = rmat(5, 80, seed=seed, weighted=True)
    coo = graph.adjacency
    back = coo.transpose().transpose()
    assert np.array_equal(back.to_dense(), coo.to_dense())


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000),
       split=st.integers(min_value=1, max_value=99))
def test_matvec_distributes_over_edge_partition(seed, split):
    """Splitting the edge list into two groups and summing the partial
    products must equal the full product — the invariant GraphR's
    block/subgraph partitioning rests on."""
    rng = np.random.default_rng(seed)
    graph = rmat(5, 100, seed=seed, weighted=True)
    coo = graph.adjacency
    x = rng.random(coo.shape[1])
    k = coo.nnz * split // 100
    first = coo.take(np.arange(k))
    second = coo.take(np.arange(k, coo.nnz))
    assert np.allclose(first.matvec(x) + second.matvec(x),
                       coo.matvec(x))


@settings(max_examples=30, deadline=None)
@given(counts=st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=0, max_value=100)),
    min_size=0, max_size=20))
def test_energy_ledger_merge_equals_sequential_charging(counts):
    """Charging events into two ledgers and merging equals charging
    them all into one."""
    merged = EnergyLedger()
    left, right = EnergyLedger(), EnergyLedger()
    for i, (component, count) in enumerate(counts):
        target = left if i % 2 == 0 else right
        target.charge(component, count, 1e-12)
        merged.charge(component, count, 1e-12)
    left.merge(right)
    assert left.total_j == pytest.approx(merged.total_j)
    for component in ("a", "b", "c"):
        assert left.count_of(component) == merged.count_of(component)


@settings(max_examples=30, deadline=None)
@given(tiles=st.integers(min_value=0, max_value=100_000),
       presentations=st.integers(min_value=0, max_value=100_000),
       extra=st.integers(min_value=1, max_value=50_000))
def test_cost_model_monotone_in_work(tiles, presentations, extra):
    """More tiles or presentations can never take less time."""
    model = CostModel(GraphRConfig(mode="analytic"))
    base = IterationEvents(edges=10, scanned_edges=10, tiles=tiles,
                           presentations=presentations)
    more_tiles = IterationEvents(edges=10, scanned_edges=10,
                                 tiles=tiles + extra,
                                 presentations=presentations)
    more_pres = IterationEvents(edges=10, scanned_edges=10, tiles=tiles,
                                presentations=presentations + extra)
    t0 = model.iteration_time_s(base)
    assert model.iteration_time_s(more_tiles) >= t0
    assert model.iteration_time_s(more_pres) >= t0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_pagerank_mass_conserved_without_dangling(seed):
    """On graphs where every vertex has out-degree > 0, PageRank mass
    sums to exactly 1 each iteration."""
    from repro.algorithms.pagerank import pagerank_reference
    from repro.graph.graph import Graph

    rng = np.random.default_rng(seed)
    n = 20
    # Guarantee out-degree >= 1: a ring plus random chords.
    edges = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(30):
        edges.append((int(rng.integers(n)), int(rng.integers(n))))
    graph = Graph.from_edges(edges, num_vertices=n).deduplicated()
    result = pagerank_reference(graph)
    assert result.values.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000),
       chunk=st.integers(min_value=1, max_value=32))
def test_dual_windows_edge_grid_conserves_edges(seed, chunk):
    from repro.graph.partition import DualSlidingWindows

    graph = rmat(5, 120, seed=seed)
    windows = DualSlidingWindows(graph.num_vertices,
                                 min(chunk, graph.num_vertices))
    grid = windows.edge_grid_counts(graph.adjacency)
    assert grid.sum() == graph.num_edges
