"""Tests for shared-memory dataset residency (prepare/attach/compute).

Covers the acceptance-critical behaviours: the publish/attach segment
round trip (zero-copy, read-only, bit-identical), exactly one dataset
build across a worker pool, bit-identical results with residency on or
off across every deployment, budget eviction that never breaks an
attached reader, crash-orphan sweeping, and the cache-less out-of-core
scratch root (one shard build, then reuse; failed builds leave no
scratch).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np
import pytest

from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.graph import datasets
from repro.graph.graph import Graph
from repro.obs import metrics
from repro.runtime import residency
from repro.runtime.job import Job
from repro.runtime.residency import (ResidentSetManager, SEGMENT_PREFIX,
                                     SegmentNotReady, attach_graph,
                                     ensure_dataset, host_resident_stats,
                                     list_host_segments, publish_graph,
                                     segment_for, unlink_segment)
from repro.runtime.scheduler import Scheduler, execute_job

pytestmark = pytest.mark.skipif(
    not residency.residency_supported(),
    reason="shared-memory residency is Linux-only")


def _purge_host_segments() -> None:
    for name, _, _ in list_host_segments(include_locks=True):
        unlink_segment(name)
    residency._LOCAL.clear()


@pytest.fixture(autouse=True)
def clean_segments():
    """Segments live in the host-wide /dev/shm namespace: start and
    finish every test with a clean slate."""
    _purge_host_segments()
    yield
    _purge_host_segments()


def make_graph(name: str = "seg") -> Graph:
    return Graph.from_edges(
        [(0, 1, 2.0), (1, 2, 3.0), (2, 0, 5.0), (2, 3, 7.0)],
        num_vertices=4, name=name, weighted=True)


class TestSegmentRoundTrip:
    def test_publish_then_attach_is_bit_identical(self):
        graph = make_graph()
        name = SEGMENT_PREFIX + "testroundtrip"
        shm = publish_graph(name, graph)
        assert shm is not None
        shm2, attached = attach_graph(name)
        assert attached.name == graph.name
        assert attached.weighted == graph.weighted
        assert attached.num_vertices == graph.num_vertices
        np.testing.assert_array_equal(attached.adjacency.rows,
                                      graph.adjacency.rows)
        np.testing.assert_array_equal(attached.adjacency.cols,
                                      graph.adjacency.cols)
        np.testing.assert_array_equal(attached.adjacency.values,
                                      graph.adjacency.values)

    def test_attached_arrays_are_read_only_views(self):
        name = SEGMENT_PREFIX + "testreadonly"
        publish_graph(name, make_graph())
        _, attached = attach_graph(name)
        assert not attached.adjacency.values.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            attached.adjacency.values[0] = 99.0

    def test_second_publish_yields_none(self):
        name = SEGMENT_PREFIX + "testdup"
        assert publish_graph(name, make_graph()) is not None
        assert publish_graph(name, make_graph()) is None

    def test_missing_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_graph(SEGMENT_PREFIX + "testmissing")

    def test_unready_segment_raises(self):
        # A builder that died mid-write never wrote the magic.
        from multiprocessing import shared_memory

        name = SEGMENT_PREFIX + "testtorn"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=256)
        residency._untrack(shm)
        with pytest.raises(SegmentNotReady):
            attach_graph(name)


class TestEnsureDataset:
    def test_cold_then_warm_without_sharing(self):
        datasets.clear_cache()
        with metrics.use_registry() as registry:
            first = ensure_dataset("WV", False, 7, share=False)
            second = ensure_dataset("WV", False, 7, share=False)
            assert second is first  # the in-process cache hit
            assert registry.counter(
                "repro_dataset_builds_total").value == 1

    def test_shared_build_publishes_once(self):
        with metrics.use_registry() as registry:
            log: list = []
            first = ensure_dataset("WV", False, 7, share=True,
                                   resident_log=log)
            second = ensure_dataset("WV", False, 7, share=True,
                                    resident_log=log)
            assert registry.counter(
                "repro_dataset_builds_total").value == 1
            assert [entry["action"] for entry in log] == \
                ["build-publish", "attach"]
            name = segment_for("WV", False, 7)
            assert any(seg == name
                       for seg, _, _ in list_host_segments())
            assert first.num_vertices == second.num_vertices
            np.testing.assert_array_equal(
                first.adjacency.values, second.adjacency.values)


@pytest.mark.skipif(sys.platform != "linux",
                    reason="pool residency relies on fork")
class TestPoolResidency:
    def test_pool_builds_dataset_exactly_once(self):
        jobs = [Job("spmv", "WV"),
                Job("pagerank", "WV",
                    run_kwargs={"max_iterations": 3}),
                Job("bfs", "WV", run_kwargs={"source": 0}),
                Job("sssp", "WV", run_kwargs={"source": 0})]
        # sssp wants weights, so the grid needs two artifacts: the
        # unweighted WV and the weighted WV.  One build each.
        with metrics.use_registry() as registry:
            scheduler = Scheduler(workers=4, residency=True)
            assert scheduler.residency
            results = scheduler.run(jobs)
            assert all(r.ok for r in results)
            assert registry.counter(
                "repro_dataset_builds_total").value == 2
        # The batch has no long-lived owner: the pool unlinked its
        # segments on the way out.
        assert list_host_segments(include_locks=True) == []

    def test_pool_results_match_serial(self):
        jobs = [Job("spmv", "WV"),
                Job("pagerank", "WV",
                    run_kwargs={"max_iterations": 3})]
        serial = Scheduler(workers=1, residency=False).run(jobs)
        shared = Scheduler(workers=2, residency=True).run(jobs)
        for s, p in zip(serial, shared):
            assert p.stats.identity_dict() == s.stats.identity_dict()


class TestBitIdentity:
    """Residency changes where the bytes live, never what they are."""

    JOBS = [
        Job("pagerank", "WV", run_kwargs={"max_iterations": 3}),
        Job("spmv", "WV",
            config=GraphRConfig(mode="analytic", block_size=64),
            deployment=DeploymentSpec(kind="out-of-core")),
        Job("pagerank", "WV",
            deployment=DeploymentSpec(kind="multi-node", num_nodes=2),
            run_kwargs={"max_iterations": 3}),
    ]

    @pytest.mark.parametrize("job", JOBS,
                             ids=["single", "out-of-core",
                                  "multi-node"])
    def test_identity_with_and_without_residency(self, job, tmp_path):
        plain = execute_job(job, cache_dir=str(tmp_path / "a"),
                            residency=False)
        resident = execute_job(job, cache_dir=str(tmp_path / "b"),
                               residency=True, resident_log=[])
        assert resident.identity_dict() == plain.identity_dict()


class TestResidentSetManager:
    def _publish(self, name: str):
        shm = publish_graph(name, make_graph())
        assert shm is not None
        return shm

    def test_observe_adopts_and_reports(self):
        name = SEGMENT_PREFIX + "testadopt"
        shm = self._publish(name)
        manager = ResidentSetManager()
        manager.observe([{"name": name, "bytes": shm.size,
                          "action": "build-publish", "dataset": "WV"}])
        stats = manager.as_dict()
        assert stats["resident_segments"] == 1
        assert stats["resident_bytes"] == shm.size
        assert host_resident_stats()["resident_segments"] == 1

    def test_local_fallbacks_are_not_adopted(self):
        manager = ResidentSetManager()
        manager.observe([{"name": SEGMENT_PREFIX + "testnothere",
                          "bytes": 0, "action": "local",
                          "dataset": "WV"}])
        assert manager.as_dict()["resident_segments"] == 0

    def test_eviction_respects_lru_and_readers_survive(self):
        name_a = SEGMENT_PREFIX + "testevicta"
        name_b = SEGMENT_PREFIX + "testevictb"
        shm_a = self._publish(name_a)
        self._publish(name_b)
        _, reader = attach_graph(name_a)
        manager = ResidentSetManager(max_bytes=shm_a.size + 1)
        manager.observe([
            {"name": name_a, "bytes": shm_a.size, "action": "attach",
             "dataset": "WV"},
            {"name": name_b, "bytes": shm_a.size, "action": "attach",
             "dataset": "WV"},
        ])
        names = [seg for seg, _, _ in list_host_segments()]
        assert name_a not in names  # LRU victim, unlinked
        assert name_b in names
        assert manager.evictions == 1
        # POSIX semantics: the unlinked mapping stays readable until
        # the last reader unmaps.
        assert float(reader.adjacency.values.sum()) == 17.0

    def test_pinned_segments_are_never_evicted(self):
        name = SEGMENT_PREFIX + "testpinned"
        shm = self._publish(name)
        manager = ResidentSetManager(max_bytes=1)  # everything is over
        manager.pin(name)
        manager.observe([{"name": name, "bytes": shm.size,
                          "action": "attach", "dataset": "WV"}])
        assert [seg for seg, _, _ in list_host_segments()] == [name]
        manager.unpin(name)
        manager.evict_to_budget()
        assert list_host_segments() == []

    def test_sweep_reclaims_crash_leftovers(self, monkeypatch):
        from multiprocessing import shared_memory

        # Fast-forward the stale grace so the test does not sleep.
        monkeypatch.setattr(residency, "STALE_GRACE_S", 0.0)
        ready = SEGMENT_PREFIX + "testready"
        self._publish(ready)
        torn = SEGMENT_PREFIX + "testtornseg"
        shm = shared_memory.SharedMemory(name=torn, create=True,
                                         size=64)
        residency._untrack(shm)
        lock = shared_memory.SharedMemory(
            name=SEGMENT_PREFIX + "teststale.lck", create=True, size=1)
        residency._untrack(lock)

        manager = ResidentSetManager()
        removed = manager.sweep_orphans()
        # The stale lock and the torn segment go; the ready segment is
        # adopted instead of leaked.
        assert SEGMENT_PREFIX + "teststale.lck" in removed
        assert torn in removed
        assert manager.orphans_swept == len(removed) == 2
        assert manager.as_dict()["resident_segments"] == 1
        manager.shutdown()
        assert list_host_segments(include_locks=True) == []

    def test_shutdown_purges_the_prefix(self):
        self._publish(SEGMENT_PREFIX + "testshutdown")
        manager = ResidentSetManager()
        manager.shutdown()  # even untracked segments are purged
        assert list_host_segments(include_locks=True) == []


class TestScratchShardRoot:
    """cache_dir=None out-of-core runs reuse a per-process scratch
    shard instead of re-sharding every execution."""

    JOB = Job("spmv", "WV",
              config=GraphRConfig(mode="analytic", block_size=32),
              deployment=DeploymentSpec(kind="out-of-core"))

    def test_cacheless_reruns_reuse_the_shard(self):
        with metrics.use_registry() as registry:
            first = execute_job(self.JOB)
            second = execute_job(self.JOB)
            assert registry.counter(
                "repro_shard_builds_total").value == 1
            assert registry.counter(
                "repro_shard_reuses_total").value == 1
        assert second.identity_dict() == first.identity_dict()

    def test_scratch_root_is_stable_within_the_process(self):
        root = residency.process_shard_root()
        assert root == residency.process_shard_root()
        assert os.path.isdir(root)

    def test_failed_shard_build_leaves_no_scratch(self, tmp_path,
                                                  monkeypatch):
        from repro.runtime import shards as shards_module

        def exploding(graph, directory, config):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(shards_module, "prepare_on_disk",
                            exploding)
        graph = datasets.dataset("WV")
        config = GraphRConfig(mode="analytic", block_size=64)
        with pytest.raises(RuntimeError):
            shards_module.prepared_block_dir(
                graph, config, tmp_path, dataset="WV", dataset_seed=7,
                weighted=False)
        shard_root = tmp_path / "shards"
        leftovers = list(shard_root.glob("*.tmp.*")) \
            if shard_root.is_dir() else []
        assert leftovers == []
