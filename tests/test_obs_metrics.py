"""Tests for the mergeable metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Histogram,
                               MetricsRegistry, get_registry,
                               use_registry)


class TestPrimitives:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.help == "help text"

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("bytes")
        gauge.set(100)
        gauge.inc(-25)
        assert gauge.value == 75.0

    def test_histogram_bins_by_upper_bound(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            histogram.observe(value)
        # 0.05 and 0.1 both fall in the first bucket (<= bound).
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(105.65)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == \
            sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_collision_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]  # sorted
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.2)
        assert json.loads(json.dumps(registry.snapshot()))


class TestMerge:
    def test_counters_add_and_gauges_last_write(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("jobs").inc(3)
        parent.gauge("depth").set(10)
        worker.counter("jobs").inc(2)
        worker.gauge("depth").set(4)
        parent.merge(worker.snapshot())
        assert parent.counter("jobs").value == 5.0
        assert parent.gauge("depth").value == 4.0

    def test_merge_twice_doubles_counters(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("n").inc(7)
        delta = worker.snapshot()
        parent.merge(delta)
        parent.merge(delta)
        assert parent.counter("n").value == 14.0

    def test_histogram_cells_add(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(99.0)
        parent.merge(worker.snapshot())
        merged = parent.histogram("h", buckets=(1.0, 2.0))
        assert merged.counts == [1, 1, 1]
        assert merged.count == 3
        assert merged.sum == pytest.approx(101.0)

    def test_merge_creates_unknown_metrics(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("fresh").inc()
        parent.merge(worker.snapshot())
        assert parent.counter("fresh").value == 1.0

    def test_bucket_mismatch_raises(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("h", buckets=(1.0,)).observe(0.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_malformed_snapshot_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge("not a mapping")

    def test_concurrent_merges_lose_nothing(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("n").inc()
        delta = worker.snapshot()
        threads = [threading.Thread(
            target=lambda: [parent.merge(delta) for _ in range(50)])
            for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert parent.counter("n").value == 200.0


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs").inc(3)
        registry.gauge("repro_depth").set(2.5)
        histogram = registry.histogram("repro_lat_seconds",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(10.0)
        text = registry.to_prometheus()
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text  # integers render bare
        assert "repro_depth 2.5" in text
        # Bucket counts are cumulative, with an explicit +Inf.
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert text.endswith("\n")


class TestProcessCurrentRegistry:
    def test_use_registry_swaps_and_restores(self):
        outer = get_registry()
        with use_registry() as inner:
            assert get_registry() is inner
            assert inner is not outer
            inner.counter("scoped").inc()
        assert get_registry() is outer
        # The scoped delta never leaked into the outer registry.
        assert "scoped" not in outer.snapshot()["counters"]

    def test_disabled_recording_is_a_noop(self):
        registry = MetricsRegistry()
        metrics.set_enabled(False)
        try:
            registry.counter("c").inc()
            registry.gauge("g").set(5)
            registry.histogram("h").observe(1.0)
        finally:
            metrics.set_enabled(True)
        assert registry.counter("c").value == 0.0
        assert registry.gauge("g").value == 0.0
        assert registry.histogram("h").count == 0

    def test_after_fork_reset_replaces_inherited_locks(self):
        """A forked child inherits module/registry locks in whatever
        state some parent thread had them; the after-fork hook swaps
        in fresh ones so the child's first set_registry cannot
        deadlock."""
        old_module_lock = metrics._registry_lock
        old_registry_lock = metrics._registry._lock
        metrics._reset_locks_after_fork()
        assert metrics._registry_lock is not old_module_lock
        assert metrics._registry._lock is not old_registry_lock
        # The swapped-in locks are immediately usable.
        with use_registry() as inner:
            inner.counter("post_fork").inc()
            assert inner.counter("post_fork").value == 1.0
