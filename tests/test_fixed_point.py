"""Unit + property tests for fixed-point encoding and bit slicing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.reram.fixed_point import (
    FixedPointFormat,
    bit_slices,
    combine_slices,
    quantize,
)


class TestFormat:
    def test_defaults(self):
        fmt = FixedPointFormat()
        assert fmt.total_bits == 16
        assert fmt.scale == 1 / 256
        assert fmt.max_code == 65535

    def test_integer_format(self):
        fmt = FixedPointFormat(16, 0)
        assert fmt.scale == 1.0
        assert fmt.max_value == 65535.0

    def test_encode_decode_round_trip(self):
        fmt = FixedPointFormat(16, 8)
        values = np.array([0.0, 1.0, 3.5, 255.99])
        assert np.allclose(fmt.decode(fmt.encode(values)), values,
                           atol=fmt.scale)

    def test_encode_clamps_high(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.encode(np.array([999.0]))[0] == 255

    def test_encode_clamps_negative(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.encode(np.array([-5.0]))[0] == 0

    def test_invalid_bits(self):
        with pytest.raises(DeviceError):
            FixedPointFormat(0, 0)
        with pytest.raises(DeviceError):
            FixedPointFormat(8, 8)
        with pytest.raises(DeviceError):
            FixedPointFormat(64, 2)

    def test_quantize_helper(self):
        fmt = FixedPointFormat(16, 8)
        q = quantize(np.array([1.2345]), fmt)
        assert abs(q[0] - 1.2345) <= fmt.scale


class TestBitSlices:
    def test_paper_example_shape(self):
        """16-bit value -> four 4-bit segments M = [M3, M2, M1, M0]."""
        slices = bit_slices(np.array([0xABCD]), cell_bits=4, total_bits=16)
        assert len(slices) == 4
        assert slices[0][0] == 0xD
        assert slices[1][0] == 0xC
        assert slices[2][0] == 0xB
        assert slices[3][0] == 0xA

    def test_round_trip(self):
        codes = np.array([0, 1, 4095, 65535, 256])
        slices = bit_slices(codes, 4, 16)
        assert np.array_equal(combine_slices(slices, 4), codes)

    def test_shift_add_of_sums_is_exact(self, rng):
        """The paper's D3<<12 + D2<<8 + D1<<4 + D0 recombination works
        on *summed* slice outputs, not just individual codes."""
        a = rng.integers(0, 65536, size=8)
        b = rng.integers(0, 65536, size=8)
        sa = bit_slices(a, 4, 16)
        sb = bit_slices(b, 4, 16)
        summed = [x + y for x, y in zip(sa, sb)]
        assert np.array_equal(combine_slices(summed, 4), a + b)

    def test_indivisible_width_rejected(self):
        with pytest.raises(DeviceError):
            bit_slices(np.array([1]), 5, 16)

    def test_out_of_range_code_rejected(self):
        with pytest.raises(DeviceError):
            bit_slices(np.array([1 << 16]), 4, 16)

    def test_negative_code_rejected(self):
        with pytest.raises(DeviceError):
            bit_slices(np.array([-1]), 4, 16)

    def test_combine_empty_rejected(self):
        with pytest.raises(DeviceError):
            combine_slices([], 4)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=65535),
                min_size=1, max_size=32),
       st.sampled_from([2, 4, 8]))
def test_property_slice_combine_identity(codes, cell_bits):
    """combine(slice(x)) == x for every cell width dividing 16."""
    arr = np.array(codes, dtype=np.int64)
    slices = bit_slices(arr, cell_bits, 16)
    assert np.array_equal(combine_slices(slices, cell_bits), arr)
    for s in slices:
        assert s.min() >= 0
        assert s.max() < (1 << cell_bits)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=200.0,
                          allow_nan=False), min_size=1, max_size=16),
       st.integers(min_value=1, max_value=15))
def test_property_quantization_error_bounded(values, frac_bits):
    """|quantize(x) - x| <= scale/2 within range, monotone clamping."""
    fmt = FixedPointFormat(16, frac_bits)
    arr = np.array(values)
    q = quantize(arr, fmt)
    in_range = arr <= fmt.max_value
    assert np.all(np.abs(q[in_range] - arr[in_range])
                  <= fmt.scale / 2 + 1e-12)
    assert np.all(q[~in_range] == pytest.approx(fmt.max_value))
