"""Tests for the controller instruction-trace layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.vertex_program import MappingPattern
from repro.core.config import GraphRConfig
from repro.core.isa import (
    Instruction,
    Opcode,
    events_from_trace,
    trace_iteration,
    trace_summary,
)
from repro.core.streaming import SubgraphStreamer
from repro.graph.generators import rmat


@pytest.fixture
def streamer(small_weighted_graph):
    cfg = GraphRConfig(crossbar_size=4, crossbars_per_ge=8, num_ges=2)
    return SubgraphStreamer(small_weighted_graph, cfg)


class TestTraceStructure:
    def test_starts_with_load_ends_with_convergence(self, streamer):
        trace = trace_iteration(streamer, MappingPattern.PARALLEL_MAC)
        assert trace[0].opcode is Opcode.LOAD_BLOCK
        assert trace[-1].opcode is Opcode.CHECK_CONVERGENCE
        assert trace[-2].opcode is Opcode.APPLY

    def test_one_program_per_nonempty_subgraph(self, streamer):
        trace = trace_iteration(streamer, MappingPattern.PARALLEL_MAC)
        summary = trace_summary(trace)
        assert summary["program_subgraph"] \
            == streamer.num_nonempty_subgraphs
        assert summary["present"] == summary["program_subgraph"]
        assert summary["reduce"] == summary["program_subgraph"]
        assert summary["load_block"] == 1

    def test_instruction_repr(self):
        ins = Instruction(Opcode.PRESENT, {"count": 3})
        assert "present" in repr(ins)
        assert "count=3" in repr(ins)


class TestEventsRoundTrip:
    @pytest.mark.parametrize("pattern", [MappingPattern.PARALLEL_MAC,
                                         MappingPattern.PARALLEL_ADD_OP])
    def test_full_iteration_matches_analytic_events(self, streamer,
                                                    pattern):
        """The instruction-level count must equal the vectorised one."""
        trace = trace_iteration(streamer, pattern)
        from_trace = events_from_trace(trace, pattern)
        analytic = streamer.iteration_events(pattern)
        assert from_trace.edges == analytic.edges
        assert from_trace.scanned_edges == analytic.scanned_edges
        assert from_trace.subgraphs == analytic.subgraphs
        assert from_trace.tiles == analytic.tiles
        assert from_trace.touched_rows == analytic.touched_rows
        assert from_trace.presentations == analytic.presentations
        assert from_trace.apply_ops == analytic.apply_ops
        assert from_trace.addop == analytic.addop

    def test_frontier_iteration_matches(self, streamer,
                                        small_weighted_graph):
        n = small_weighted_graph.num_vertices
        frontier = np.zeros(n, dtype=bool)
        frontier[:5] = True
        pattern = MappingPattern.PARALLEL_ADD_OP
        trace = trace_iteration(streamer, pattern, frontier=frontier)
        from_trace = events_from_trace(trace, pattern)
        analytic = streamer.iteration_events(pattern, frontier=frontier)
        assert from_trace.edges == analytic.edges
        assert from_trace.tiles == analytic.tiles
        assert from_trace.presentations == analytic.presentations

    def test_larger_graph_round_trip(self):
        graph = rmat(7, 800, seed=5)
        cfg = GraphRConfig(crossbar_size=8, crossbars_per_ge=32,
                           num_ges=4)
        streamer = SubgraphStreamer(graph, cfg)
        pattern = MappingPattern.PARALLEL_MAC
        from_trace = events_from_trace(
            trace_iteration(streamer, pattern), pattern)
        analytic = streamer.iteration_events(pattern)
        assert from_trace.tiles == analytic.tiles
        assert from_trace.touched_rows == analytic.touched_rows
