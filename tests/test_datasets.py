"""Unit tests for the Table 3 dataset analogs."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graph import datasets
from repro.graph.datasets import (
    MAX_SYNTH_EDGES,
    PAPER_DATASETS,
    DatasetSpec,
    dataset,
    list_datasets,
)


class TestRegistry:
    def test_all_seven_present(self):
        assert list_datasets() == ("WV", "SD", "AZ", "WG", "LJ", "OK", "NF")

    def test_unknown_code(self):
        with pytest.raises(DatasetError):
            dataset("XX")

    def test_case_insensitive(self):
        assert dataset("wv") is dataset("WV")

    def test_paper_statistics(self):
        assert PAPER_DATASETS["WV"].paper_edges == 103_000
        assert PAPER_DATASETS["LJ"].paper_vertices == 4_800_000
        assert PAPER_DATASETS["NF"].bipartite


class TestScalePolicy:
    def test_small_dataset_unscaled(self):
        vertices, edges, factor = PAPER_DATASETS["WV"].synthetic_size()
        assert (vertices, edges, factor) == (7_000, 103_000, 1.0)

    def test_large_dataset_scaled(self):
        vertices, edges, factor = PAPER_DATASETS["OK"].synthetic_size()
        assert edges == MAX_SYNTH_EDGES
        assert factor == pytest.approx(106_000_000 / MAX_SYNTH_EDGES)
        assert vertices < PAPER_DATASETS["OK"].paper_vertices

    def test_generated_scale_factor_recorded(self):
        assert dataset("LJ").scale_factor > 1.0
        assert dataset("WV").scale_factor == 1.0

    def test_density_ordering_preserved(self):
        # WV is by far the densest of the paper's directed graphs.
        wv = dataset("WV")
        lj = dataset("LJ")
        assert wv.density > lj.density


class TestCaching:
    def test_cache_hit(self):
        assert dataset("WV") is dataset("WV")

    def test_cache_bypass(self):
        fresh = dataset("WV", use_cache=False)
        assert fresh is not dataset("WV")
        assert fresh.adjacency == dataset("WV").adjacency

    def test_weighted_variant_cached_separately(self):
        assert dataset("WV") is not dataset("WV", weighted=True)

    def test_clear_cache(self):
        before = dataset("WV")
        datasets.clear_cache()
        after = dataset("WV")
        assert before is not after
        assert before.adjacency == after.adjacency


class TestNetflix:
    def test_bipartite_shape(self):
        nf = dataset("NF")
        # Item count is preserved, users scaled (DESIGN.md note).
        assert nf.num_vertices > PAPER_DATASETS["NF"].items
        assert nf.weighted

    def test_spec_helper(self):
        spec = DatasetSpec("ZZ", "Test", 10, 20)
        assert spec.synthetic_size() == (10, 20, 1.0)
