"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import (
    bipartite_rating_graph,
    chain_graph,
    complete_graph,
    erdos_renyi,
    grid_graph,
    rmat,
    star_graph,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 200, seed=1)
        assert g.num_edges == 200
        assert g.num_vertices == 50

    def test_deterministic(self):
        a = erdos_renyi(40, 100, seed=7)
        b = erdos_renyi(40, 100, seed=7)
        assert a.adjacency == b.adjacency

    def test_different_seeds_differ(self):
        a = erdos_renyi(40, 100, seed=7)
        b = erdos_renyi(40, 100, seed=8)
        assert a.adjacency != b.adjacency

    def test_no_self_loops_by_default(self):
        g = erdos_renyi(20, 100, seed=3)
        assert not np.any(np.asarray(g.adjacency.rows)
                          == np.asarray(g.adjacency.cols))

    def test_no_duplicate_edges(self):
        g = erdos_renyi(20, 150, seed=3)
        keys = (np.asarray(g.adjacency.rows) * 20
                + np.asarray(g.adjacency.cols))
        assert np.unique(keys).size == g.num_edges

    def test_weighted(self):
        g = erdos_renyi(20, 50, seed=3, weighted=True, max_weight=15)
        vals = np.asarray(g.adjacency.values)
        assert vals.min() >= 1 and vals.max() <= 15
        assert g.weighted

    def test_capacity_exceeded(self):
        with pytest.raises(GraphFormatError):
            erdos_renyi(3, 100, seed=0)

    def test_bad_vertices(self):
        with pytest.raises(GraphFormatError):
            erdos_renyi(0, 0)


class TestRMAT:
    def test_edge_count_hit_exactly(self):
        g = rmat(8, 900, seed=2)
        assert g.num_edges == 900
        assert g.num_vertices == 256

    def test_deterministic(self):
        assert rmat(7, 300, seed=4).adjacency == rmat(7, 300, seed=4).adjacency

    def test_power_law_skew(self):
        g = rmat(10, 8000, seed=6)
        deg = g.out_degrees()
        # Heavy tail: the max degree dwarfs the mean.
        assert deg.max() > 8 * deg.mean()

    def test_weighted_range(self):
        g = rmat(6, 100, seed=1, weighted=True, max_weight=7)
        vals = np.asarray(g.adjacency.values)
        assert vals.min() >= 1 and vals.max() <= 7

    def test_no_duplicates_after_dedup(self):
        g = rmat(6, 200, seed=1)
        n = g.num_vertices
        keys = (np.asarray(g.adjacency.rows) * n
                + np.asarray(g.adjacency.cols))
        assert np.unique(keys).size == g.num_edges

    def test_bad_scale(self):
        with pytest.raises(GraphFormatError):
            rmat(0, 10)
        with pytest.raises(GraphFormatError):
            rmat(31, 10)

    def test_bad_probabilities(self):
        with pytest.raises(GraphFormatError):
            rmat(4, 10, a=0.5, b=0.3, c=0.3)


class TestBipartite:
    def test_structure(self):
        g = bipartite_rating_graph(30, 10, 100, seed=5)
        src = np.asarray(g.adjacency.rows)
        dst = np.asarray(g.adjacency.cols)
        assert src.max() < 30          # users on the left
        assert dst.min() >= 30         # items shifted past users
        assert g.num_vertices == 40
        assert g.weighted

    def test_rating_levels(self):
        g = bipartite_rating_graph(30, 10, 100, seed=5, rating_levels=5)
        vals = np.asarray(g.adjacency.values)
        assert vals.min() >= 1 and vals.max() <= 5

    def test_popularity_skew(self):
        g = bipartite_rating_graph(200, 50, 2000, seed=5)
        item_deg = g.in_degrees()[200:]
        assert item_deg[0] > item_deg[item_deg > 0].mean()

    def test_too_many_ratings(self):
        with pytest.raises(GraphFormatError):
            bipartite_rating_graph(2, 2, 100)

    def test_bad_sizes(self):
        with pytest.raises(GraphFormatError):
            bipartite_rating_graph(0, 2, 1)


class TestStructured:
    def test_chain(self):
        g = chain_graph(5)
        assert g.num_edges == 4
        assert g.adjacency.to_dense()[0, 1] == 1.0

    def test_chain_bad(self):
        with pytest.raises(GraphFormatError):
            chain_graph(0)

    def test_star(self):
        g = star_graph(6, center=2)
        assert g.num_edges == 5
        assert g.out_degrees()[2] == 5

    def test_star_bad_center(self):
        with pytest.raises(GraphFormatError):
            star_graph(4, center=9)

    def test_grid(self):
        g = grid_graph(3)
        assert g.num_vertices == 9
        # Interior corner has right+down edges: 2 * side * (side-1) total.
        assert g.num_edges == 12

    def test_grid_bad(self):
        with pytest.raises(GraphFormatError):
            grid_graph(0)

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 20
        dense = g.adjacency.to_dense()
        assert np.all(np.diag(dense) == 0)

    def test_complete_bad(self):
        with pytest.raises(GraphFormatError):
            complete_graph(-1)
